// Package experiments reproduces the paper's evaluation: every table
// and figure has a driver here that builds the simulated system,
// fragments it with background load, runs the benchmark models, and
// simulates all TLB configurations over one identical reference stream.
// DESIGN.md's per-experiment index maps paper artifacts to the drivers
// in this package.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strconv"
	"time"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/contig"
	"colt/internal/core"
	"colt/internal/fault"
	"colt/internal/invariant"
	"colt/internal/metrics"
	"colt/internal/mm"
	"colt/internal/mmu"
	"colt/internal/perf"
	"colt/internal/rng"
	"colt/internal/sched"
	"colt/internal/telemetry"
	"colt/internal/vm"
	"colt/internal/workload"
)

// SystemSetup is one kernel configuration of paper §5.1.1.
type SystemSetup struct {
	Name       string
	THP        bool
	Compaction mm.CompactionMode
	MemhogPct  int
}

// The five configurations the paper focuses on.
var (
	SetupTHSOnNormal   = SystemSetup{Name: "THS on, normal compaction", THP: true, Compaction: mm.CompactionNormal}
	SetupTHSOffNormal  = SystemSetup{Name: "THS off, normal compaction", THP: false, Compaction: mm.CompactionNormal}
	SetupTHSOffLow     = SystemSetup{Name: "THS off, low compaction", THP: false, Compaction: mm.CompactionLow}
	SetupTHSOnMemhog25 = SystemSetup{Name: "THS on, normal compaction, memhog(25)", THP: true, Compaction: mm.CompactionNormal, MemhogPct: 25}
	SetupTHSOnMemhog50 = SystemSetup{Name: "THS on, normal compaction, memhog(50)", THP: true, Compaction: mm.CompactionNormal, MemhogPct: 50}
)

// Setups returns the paper's five studied configurations.
func Setups() []SystemSetup {
	return []SystemSetup{SetupTHSOnNormal, SetupTHSOffNormal, SetupTHSOffLow, SetupTHSOnMemhog25, SetupTHSOnMemhog50}
}

// Options controls simulation size. Defaults reproduce the paper at a
// laptop-feasible scale; Quick shrinks everything for tests.
type Options struct {
	Frames int     // physical memory frames
	Scale  float64 // workload footprint scale factor
	// ColdScale additionally scales only the bulk data, mapping the
	// paper's footprint-to-memory ratios onto the simulated machine.
	ColdScale float64
	ChurnOps  int // background fragmentation operations before the run
	Warmup    int // warmup references (stats reset afterwards)
	Refs      int // measured references
	Seed      uint64
	// MidRunChurn injects OS activity (small alloc/free bursts, hence
	// compaction and shootdowns) during the measured run.
	MidRunChurn bool
	// Parallel is the experiment engine's worker count: how many
	// (benchmark × setup) jobs run concurrently. 0 selects
	// runtime.GOMAXPROCS(0). Results are identical for every value —
	// each job's randomness derives from (Seed, benchmark, setup) via
	// rng.Stream, never from scheduling order.
	Parallel int
	// BatchSize is how many references the benchmark hot loop decodes
	// and simulates per batch (0 selects DefaultBatchSize, 1 forces the
	// scalar path). Like Parallel it is a pure execution-shape knob:
	// results are byte-identical at every batch size — batches stop at
	// swap-in faults, churn bursts, and cancellation checkpoints so no
	// observable event moves — and it is likewise excluded from
	// Snapshot.
	BatchSize int
	// Metrics, when non-nil, receives one structured Record per
	// (benchmark × setup) job from every driver, forming the
	// machine-readable run report (see internal/metrics). Collection
	// never affects simulation results.
	Metrics *metrics.Collector
	// Faults configures the deterministic fault-injection plane: each
	// job builds a private fault.Plane seeded from
	// (Seed, benchmark, setup, attempt), so the injected fault sequence
	// is a function of the job identity alone — identical at every
	// Parallel width. The zero Spec disables injection entirely: no
	// plane is built and no hot path draws a random number.
	Faults fault.Spec
	// CheckInvariants runs the internal/invariant auditors at job
	// checkpoints (after system build, after warmup, after each mid-run
	// churn burst, at run end). A violation fails that job with a
	// structured error; it never panics and never stops sibling jobs.
	CheckInvariants bool
	// Retries is how many additional deterministic attempts a job gets
	// after failing on an INJECTED fault (each attempt reseeds the
	// fault plane with its attempt number, so the retry trajectory is
	// itself deterministic). Real errors are never retried.
	Retries int
	// JobTimeout bounds one scheduler job's wall-clock runtime,
	// retries included (0 = unbounded). Timeouts are wall-clock events:
	// runs that must stay deterministic use a bound generous enough
	// that it only fires on hangs.
	JobTimeout time.Duration
	// Histograms embeds telemetry distributions (coalescing run
	// length, walk depth/cycles, contiguity run length, TLB entry
	// lifetime) and simulated-time phase spans into each job's metrics
	// record. Everything embedded is a pure function of the job's
	// workload — byte-identical at every Parallel width.
	Histograms bool
	// Events, when non-nil, collects each job's structured event trace
	// (TLB hits/misses, coalesces, evictions, walks, THP, compaction,
	// fault injections) for Chrome trace-event export. Tracing is
	// bounded (ring buffer) and deterministically sampled; it never
	// affects simulation results.
	Events *telemetry.TraceSet
	// Progress, when non-nil, receives live per-job phase updates and
	// completion lines (the CLI's opt-in -progress stderr reporter).
	// Progress output is wall-clock-ordered and never golden-diffed.
	Progress *telemetry.Reporter
	// Ctx, when non-nil, cancels the run: jobs not yet dispatched are
	// skipped with canceled-failure records, and in-flight jobs abort
	// at their next cancellation checkpoint (every ctxCheckEvery
	// references and at every phase boundary). Cancellation is a
	// wall-clock event — like timeouts, it never appears in
	// deterministic runs — and is what lets SIGINT drain a batch run
	// cleanly and lets the serving daemon cancel one job without
	// touching its siblings.
	Ctx context.Context
	// attempt is the retry attempt this Options copy drives, folded
	// into the fault plane's seed by mapJobs so attempt N+1 draws a
	// fresh (but deterministic) fault sequence.
	attempt int
}

// telemetryOn reports whether jobs should wire telemetry sinks into
// the TLB hierarchies (histograms requested or event tracing
// attached). Phase spans are always recorded — they cost a handful of
// operations per job — but are only embedded in records under
// Histograms.
func (o Options) telemetryOn() bool {
	return o.Histograms || o.Events != nil
}

// jobLabel is the canonical display name of one scheduler job, shared
// by timing sidecars, progress lines, and trace exports.
func jobLabel(kind, bench, setup string) string {
	return kind + "/" + bench + "/" + setup
}

// pool returns the scheduler the drivers fan jobs out on, wired to the
// metrics collector's per-job timing hook when one is attached.
func (o Options) pool() *sched.Pool {
	p := sched.New(o.Parallel)
	if o.Metrics != nil {
		p.SetObserver(o.Metrics.ObserveJob)
	}
	if o.JobTimeout > 0 {
		p.SetJobTimeout(o.JobTimeout)
	}
	if o.Ctx != nil {
		p.SetContext(o.Ctx)
	}
	return p
}

// ctxCheckEvery is how many references a simulation loop runs between
// cancellation checks: frequent enough that DELETE/SIGINT feels
// immediate, rare enough to stay invisible in the hot path. Reference
// batches are clipped to these checkpoints, so batching never delays a
// cancellation beyond the scalar loop's latency.
const ctxCheckEvery = 4096

// DefaultBatchSize is the hot loop's reference-batch size when
// Options.BatchSize is zero: big enough to amortize per-batch work,
// small enough that a batch is a sliver of a cancellation window.
const DefaultBatchSize = 256

// batchSize resolves the configured batch size.
func (o Options) batchSize() int {
	if o.BatchSize <= 0 {
		return DefaultBatchSize
	}
	return o.BatchSize
}

// canceled reports the run context's cancellation error, or nil. It
// is cheap enough to call at phase boundaries unconditionally; inner
// loops gate it on the reference counter.
func (o Options) canceled() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// plane builds the job's fault-injection plane (nil when injection is
// disabled). The seed folds in the attempt number so a retried job
// sees a different — but deterministic — fault sequence.
func (o Options) plane(bench, setupName string) *fault.Plane {
	if !o.Faults.Enabled() {
		return nil
	}
	return fault.NewPlane(o.Faults, seedFor(o.Seed, bench, setupName, "fault-plane", strconv.Itoa(o.attempt)))
}

// Snapshot returns the deterministic options snapshot embedded in
// metrics reports. Parallel is deliberately dropped: reports must be
// byte-identical at every worker count.
func (o Options) Snapshot() metrics.Options {
	return metrics.Options{
		Frames:      o.Frames,
		Scale:       o.Scale,
		ColdScale:   o.ColdScale,
		ChurnOps:    o.ChurnOps,
		Warmup:      o.Warmup,
		Refs:        o.Refs,
		Seed:        o.Seed,
		MidRunChurn: o.MidRunChurn,
		FaultSpec:   o.Faults.String(),
		Histograms:  o.Histograms,
	}
}

// DefaultOptions sizes a full experiment run: a 1 GB machine with
// footprints scaled so that the biggest benchmarks occupy the same
// fraction of memory as on the paper's 3 GB testbed (Mcf's 1.7 GB maps
// to ~53%), and two million measured references per benchmark.
func DefaultOptions() Options {
	return Options{
		Frames:      1 << 18,
		Scale:       1.0,
		ColdScale:   3.4,
		ChurnOps:    1200,
		Warmup:      200_000,
		Refs:        2_000_000,
		Seed:        0xC017,
		MidRunChurn: true,
	}
}

// QuickOptions sizes a fast smoke run for tests and benchmarks.
func QuickOptions() Options {
	return Options{
		Frames:    1 << 15,
		Scale:     0.05,
		ColdScale: 1.0,
		ChurnOps:  150,
		Warmup:    5_000,
		Refs:      60_000,
		Seed:      0xC017,
	}
}

// GoldenOptions sizes the checked-in golden-run subset (TestGoldens):
// QuickOptions at a further reduced trace length, small enough to run
// in CI on every merge. The same configuration is reachable from the
// CLI as `experiments -quick -refs 20000` (the -refs override derives
// warmup as refs/10), which is how `-out` output is compared against
// the goldens.
func GoldenOptions() Options {
	o := QuickOptions()
	o.Refs = 20_000
	o.Warmup = 2_000
	return o
}

// Variant names one TLB configuration under test.
type Variant struct {
	Name   string
	Config core.Config
}

// StandardVariants returns the four configurations of Figures 18/21.
func StandardVariants() []Variant {
	return []Variant{
		{Name: "baseline", Config: core.BaselineConfig()},
		{Name: "colt-sa", Config: core.CoLTSAConfig(core.DefaultCoLTShift)},
		{Name: "colt-fa", Config: core.CoLTFAConfig()},
		{Name: "colt-all", Config: core.CoLTAllConfig()},
	}
}

// VariantResult is one TLB configuration's measurements.
type VariantResult struct {
	Name string
	// Policy is the variant's core.Policy name, recorded for the
	// metrics layer.
	Policy string
	TLB    core.Stats
	// Levels snapshots the per-structure (L1/L2/superpage) counters.
	Levels core.LevelStats
	Run    perf.Run
	// Prefetch is populated for PolicySeqPrefetch variants.
	Prefetch core.PrefetchStats
	// SubblockRejectedPct is populated for PolicyPartialSubblock
	// variants: the share of L2 fills blocked from sharing by physical
	// misalignment.
	SubblockRejectedPct float64
	// Hists carries this variant's telemetry distributions (coalescing
	// run length, walk cycles, TLB entry lifetime) when
	// Options.Histograms is set.
	Hists *metrics.VariantHists
}

// MPMI returns (L1, L2) misses per million instructions.
func (v VariantResult) MPMI() (l1, l2 float64) {
	return perf.MPMI(v.TLB.L1Misses, v.Run.Instructions),
		perf.MPMI(v.TLB.L2Misses, v.Run.Instructions)
}

// BenchResult is one benchmark × system-setup run.
type BenchResult struct {
	Bench        string
	Setup        SystemSetup
	Contig       contig.Result
	Instructions uint64
	Variants     []VariantResult
	// Spans are the job's simulated-time phase spans (build, warmup,
	// simulate) in reference-index units, populated when
	// Options.Histograms is set so they flow into the metrics record.
	Spans []telemetry.Span
	// Hists carries the job-level telemetry distributions (contiguity
	// run length, page-walk depth) when Options.Histograms is set.
	Hists *metrics.RecordHists
}

// Variant returns the named variant's result.
func (b *BenchResult) Variant(name string) (VariantResult, bool) {
	for _, v := range b.Variants {
		if v.Name == name {
			return v, true
		}
	}
	return VariantResult{}, false
}

// levelMetrics converts one TLB structure's counters to the metrics
// schema, deriving the zero-guarded rates.
func levelMetrics(s core.TLBStats, merges uint64) metrics.LevelStats {
	return metrics.LevelStats{
		Lookups:             s.Lookups,
		Hits:                s.Hits,
		Misses:              s.Misses,
		Fills:               s.Fills,
		CoalescedIn:         s.CoalescedIn,
		Evictions:           s.Evictions,
		Merges:              merges,
		HitRate:             s.HitRate(),
		TranslationsPerFill: metrics.Ratio(float64(s.Fills+s.CoalescedIn), float64(s.Fills)),
	}
}

// MetricsRecord converts the result to the machine-readable record the
// experiment drivers emit. Speedups are computed against the result's
// first variant (the baseline by convention); seed is the job's derived
// master seed.
func (b *BenchResult) MetricsRecord(seed uint64) metrics.Record {
	rec := metrics.Record{
		Kind:         metrics.KindBench,
		Bench:        b.Bench,
		Setup:        b.Setup.Name,
		Seed:         seed,
		Instructions: b.Instructions,
		Spans:        metrics.SpansFrom(b.Spans),
		Hists:        b.Hists,
	}
	model := perf.Default()
	var baseRun perf.Run
	for i, v := range b.Variants {
		l1m, l2m := v.MPMI()
		mv := metrics.Variant{
			Name:           v.Name,
			Policy:         v.Policy,
			Accesses:       v.TLB.Accesses,
			L1Misses:       v.TLB.L1Misses,
			L2Misses:       v.TLB.L2Misses,
			Walks:          v.TLB.Walks,
			Faults:         v.TLB.Faults,
			WalkCycles:     v.TLB.WalkCycles,
			CoalescedFills: v.TLB.CoalescedFills,
			L1:             levelMetrics(v.Levels.L1, 0),
			L2:             levelMetrics(v.Levels.L2, 0),
			Sup:            levelMetrics(v.Levels.Sup, v.Levels.SupMerges),
			L1MPMI:         l1m,
			L2MPMI:         l2m,
			L1MissRate:     v.TLB.L1MissRate(),
			L2MissRate:     v.TLB.L2MissRate(),
			MemStallCycles: v.Run.MemStallCycles,
			ModelCycles:    model.Cycles(v.Run),
		}
		mv.Hists = v.Hists
		if i == 0 {
			baseRun = v.Run
		} else {
			mv.SpeedupPct = model.Improvement(baseRun, v.Run)
		}
		rec.Variants = append(rec.Variants, mv)
	}
	return rec
}

// contigRecord converts one page-table scan to a metrics record.
func contigRecord(bench string, setup SystemSetup, seed uint64, res contig.Result) metrics.Record {
	return metrics.Record{
		Kind:  metrics.KindContig,
		Bench: bench,
		Setup: setup.Name,
		Seed:  seed,
		Contig: &metrics.Contiguity{
			PageAvg:       res.AverageContiguity(),
			RunAvg:        res.RunWeightedAverage(),
			SuperPages:    res.SuperPages,
			NonSuperPages: res.NonSuperPages,
			MaxRun:        res.MaxRun,
			FracOver512:   res.FractionAtLeast(513),
		},
	}
}

// simulator bundles one TLB variant's private state: its TLB hierarchy,
// walker (with MMU cache), and cache hierarchy.
type simulator struct {
	name     string
	hier     *core.Hierarchy
	walker   *mmu.Walker
	caches   *cache.Hierarchy
	memStall uint64
	pid      int
	// tel is this variant's telemetry sink (nil when telemetry is
	// off): event emission plus per-variant histograms.
	tel *telemetry.Sink
}

// replayLLC applies the shared front's recorded LLC-bound requests to
// this variant's private LLC in order, returning the demand fill's
// latency (zero when the shared L1/L2 satisfied the demand access).
// Writeback latencies are discarded, exactly as the in-cache writeback
// path discards them.
func (s *simulator) replayLLC(events []cache.LLCEvent, demandMiss bool) int {
	llc := s.caches.LLC
	lat := 0
	if demandMiss {
		lat = llc.Access(events[0].Addr, events[0].Write)
		events = events[1:]
	}
	for i := range events {
		llc.Access(events[i].Addr, events[i].Write)
	}
	return lat
}

// Shootdown implements vm.ShootdownHandler: OS events (unmap, migrate,
// THP split) flush this variant's TLBs and walk cache.
func (s *simulator) Shootdown(pid int, vpn arch.VPN) {
	if pid != s.pid {
		return
	}
	s.hier.Invalidate(vpn)
	s.walker.Flush()
}

const l1HitLatency = 4 // matches cache.DefaultHierarchy's L1

func seedFor(base uint64, parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
	}
	return base ^ h.Sum64()
}

// scaledSpec applies the run options' footprint scaling.
func scaledSpec(spec workload.Spec, opts Options) workload.Spec {
	spec = spec.Scale(opts.Scale)
	if opts.ColdScale > 0 {
		spec = spec.ScaleCold(opts.ColdScale)
	}
	return spec
}

// settlePasses lets kcompactd catch up after the churn phase (idle time
// on a real machine between the fragmenting load and the benchmark).
// Each pass is budget-bounded; CompactionLow systems skip settling.
const settlePasses = 20

// steadyStateSlots of background activity run between building a
// workload and scanning its page table.
const steadyStateSlots = 512

// buildSystem boots and fragments a system per the setup, returning it
// plus the master RNG for the benchmark and the job's fault plane
// (nil when injection is disabled). Every random consumer draws
// from a NAMED stream of the master (churn, memhog, workload, …), and
// the master's seed is itself a pure function of
// (opts.Seed, benchmark, setup): no draw anywhere depends on which
// other experiments ran before this one, which is what lets the
// scheduler run jobs in any order — or in parallel — and still produce
// byte-identical tables. The fault plane's hooks are wired before the
// churn phase, so injection covers system build as well as the run.
// A non-nil tracer is attached to the OS subsystems (THP, compaction,
// fault plane) so their structured events land in the job's trace.
func buildSystem(setup SystemSetup, opts Options, benchName string, tracer *telemetry.Tracer) (*vm.System, *rng.RNG, *fault.Plane, error) {
	sys := vm.NewSystem(vm.Config{Frames: opts.Frames, THP: setup.THP, Compaction: setup.Compaction})
	sys.THP.SetTracer(tracer)
	sys.Compactor.SetTracer(tracer)
	plane := opts.plane(benchName, setup.Name)
	if plane != nil {
		sys.Buddy.SetAllocFaultHook(func(int) error { return plane.Fail(fault.SiteBuddyAlloc) })
		sys.Compactor.SetMigrateFaultHook(func() error { return plane.Fail(fault.SiteCompactMigrate) })
		sys.THP.SetHugeFaultHook(func() error { return plane.Fail(fault.SiteTHPAlloc) })
	}
	plane.SetTracer(tracer)
	master := rng.New(seedFor(opts.Seed, benchName, setup.Name))
	if opts.ChurnOps > 0 {
		if _, err := vm.BackgroundChurn(sys, opts.ChurnOps, master.Stream("churn")); err != nil {
			return nil, nil, nil, fmt.Errorf("background churn: %w", err)
		}
	}
	if setup.Compaction == mm.CompactionNormal {
		for i := 0; i < settlePasses; i++ {
			sys.Compactor.Compact(-1)
		}
	}
	if _, err := vm.StartMemhog(sys, setup.MemhogPct, master.Stream("memhog")); err != nil {
		return nil, nil, nil, fmt.Errorf("memhog: %w", err)
	}
	if err := auditSystem(opts, "after build", sys); err != nil {
		return nil, nil, nil, err
	}
	return sys, master, plane, nil
}

// auditSystem runs the OS-level invariant auditors (buddy free lists,
// frame↔page-table ownership) at a checkpoint when CheckInvariants is
// on. Violations come back as one structured error naming the
// checkpoint, never as a panic.
func auditSystem(opts Options, where string, sys *vm.System) error {
	if !opts.CheckInvariants {
		return nil
	}
	audits := [][]invariant.Violation{
		invariant.AuditBuddy(sys.Buddy),
		invariant.AuditFrameOwners(sys),
	}
	for _, proc := range sys.Processes() {
		audits = append(audits, invariant.AuditPageTable(proc.PID, proc.Table))
	}
	if err := invariant.Check(audits...); err != nil {
		return fmt.Errorf("invariant check %s: %w", where, err)
	}
	return nil
}

// RunContiguity performs the paper's characterization for one
// benchmark: build the system and the benchmark's memory, then scan its
// page table (Figures 7-17).
func RunContiguity(spec workload.Spec, setup SystemSetup, opts Options) (contig.Result, error) {
	start := time.Now()
	label := jobLabel(metrics.KindContig, spec.Name, setup.Name)
	var spans telemetry.Spans
	if opts.Progress != nil {
		spans.OnPhase(func(phase string) { opts.Progress.Phase(label, phase) })
	}
	var tracer *telemetry.Tracer
	if opts.Events != nil {
		tracer = telemetry.NewTracer(telemetry.DefaultTraceCap)
	}
	spans.Begin("build", 0)
	if err := opts.canceled(); err != nil {
		return contig.Result{}, fmt.Errorf("%s: %w", spec.Name, err)
	}
	sys, master, _, err := buildSystem(setup, opts, spec.Name, tracer)
	if err != nil {
		return contig.Result{}, err
	}
	proc, err := sys.NewProcess()
	if err != nil {
		return contig.Result{}, err
	}
	proc.EnableSwap()
	if _, err := workload.Build(scaledSpec(spec, opts), proc, master.Stream("workload")); err != nil {
		return contig.Result{}, fmt.Errorf("building %s: %w", spec.Name, err)
	}
	// Let the system reach steady state before scanning, as the paper's
	// periodic page-table scans do: under oversubscription this is
	// where swap thrash reshapes residency. Contiguity spans count
	// idle slots as their simulated-time axis.
	spans.Begin("settle", 0)
	if err := opts.canceled(); err != nil {
		return contig.Result{}, fmt.Errorf("%s: %w", spec.Name, err)
	}
	sys.Idle(steadyStateSlots)
	if err := auditSystem(opts, "after idle", sys); err != nil {
		return contig.Result{}, err
	}
	spans.Begin("scan", steadyStateSlots)
	res := contig.Scan(proc.Table)
	spans.End(steadyStateSlots)
	if opts.Metrics != nil {
		seed := seedFor(opts.Seed, spec.Name, setup.Name)
		rec := contigRecord(spec.Name, setup, seed, res)
		if opts.Histograms {
			rec.Spans = metrics.SpansFrom(spans.All())
			rec.Hists = &metrics.RecordHists{ContigRun: metrics.HistFrom(&res.RunLenHist)}
		}
		opts.Metrics.Add(rec, time.Since(start))
		opts.Metrics.AddSpans(metrics.KindContig, spec.Name, setup.Name, spans.All())
	}
	opts.Events.Add(telemetry.JobTrace{
		Label:   label,
		Threads: []string{"os"},
		Spans:   spans.All(),
		Events:  tracer.Events(),
	})
	return res, nil
}

// benchSim is one benchmark's simulation in flight: the built system
// and workload, plus every variant's private simulator. The
// per-reference work lives in step, a named method rather than a
// closure so the allocation guard (TestSteadyStateAccessZeroAlloc) can
// exercise exactly the code the measured loop runs.
type benchSim struct {
	spec   workload.Spec
	setup  SystemSetup
	sys    *vm.System
	proc   *vm.Process
	w      *workload.Workload
	sims   []*simulator
	contig contig.Result
	// plane is the job's fault-injection plane (nil when disabled);
	// step crosses its trace-corrupt site once per reference.
	plane *fault.Plane

	instructions uint64

	// tracer is the job's event ring (nil unless Options.Events is
	// attached); shared by the OS subsystems and every variant's sink.
	tracer *telemetry.Tracer
	// refClock counts references monotonically across warmup AND the
	// measured run — it is never reset, so TLB entry lifetimes
	// (now - born) can never underflow at the warmup boundary. It is
	// the simulated-time axis for spans, event timestamps, and entry
	// lifetimes.
	refClock uint64
	// walkDepth accumulates radix-walk depth per page-table walk when
	// telemetry is on (reset with the other stats after warmup).
	walkDepth  telemetry.Hist
	histograms bool

	// Hot-loop shape, decided once at construction so the per-reference
	// path never re-derives it:
	//
	//   hasPlane  — a fault plane is attached; step crosses the
	//               trace-corrupt site per reference.
	//   hasTracer — an event ring is attached. Ring entries record the
	//               interleaving of variants within one reference, so
	//               traced jobs keep the reference-major scalar loop;
	//               stepBatch falls back to step.
	//   telPerRef — telemetry sinks are attached; the batch loop must
	//               replay per-reference refClock values inside each
	//               variant's run so entry birth times (and hence
	//               lifetime histograms) match the scalar loop exactly.
	hasPlane  bool
	hasTracer bool
	telPerRef bool
	// batch is the reused reference-decode buffer (len = batch size);
	// the steady-state zero-allocation guarantee covers the batch path.
	batch []workload.Ref

	// front is the shared L1/L2 data-cache pair. Every variant
	// translates the same reference stream to the same physical
	// addresses (the page table is common; stepBatch checks the
	// translations agree), so the L1/L2 state evolution is identical
	// across variants and is simulated once per reference. Only each
	// variant's private LLC — perturbed by its own walker's PTE
	// fetches — replays the front's recorded LLC-bound requests.
	front *cache.Front
	// frontRecs and frontEvents are the reused batch-capture buffers:
	// variant 0's pass over a batch advances the front and records,
	// per reference, the front latency, the demand-miss flag, the
	// translated PFN (for the divergence check), and a span into
	// frontEvents; the other variants replay from the recording.
	frontRecs   []frontRec
	frontEvents []cache.LLCEvent
}

// frontRec is one reference's captured front outcome (see benchSim.front).
type frontRec struct {
	pfn    arch.PFN
	lat    int32
	lo, hi int32 // LLC-bound request span in frontEvents
	demand bool  // events[lo] is the latency-critical demand fill
}

// newBenchSim boots the system, fragments it, builds the workload, and
// attaches one simulator per variant (all registered for shootdowns).
func newBenchSim(spec workload.Spec, setup SystemSetup, opts Options, variants []Variant) (*benchSim, *rng.RNG, error) {
	var tracer *telemetry.Tracer
	if opts.Events != nil {
		tracer = telemetry.NewTracer(telemetry.DefaultTraceCap)
	}
	sys, master, plane, err := buildSystem(setup, opts, spec.Name, tracer)
	if err != nil {
		return nil, nil, err
	}
	proc, err := sys.NewProcess()
	if err != nil {
		return nil, nil, err
	}
	proc.EnableSwap()
	w, err := workload.Build(scaledSpec(spec, opts), proc, master.Stream("workload"))
	if err != nil {
		return nil, nil, fmt.Errorf("building %s: %w", spec.Name, err)
	}
	b := &benchSim{
		spec:       spec,
		setup:      setup,
		sys:        sys,
		proc:       proc,
		w:          w,
		sims:       make([]*simulator, len(variants)),
		contig:     contig.Scan(proc.Table),
		plane:      plane,
		tracer:     tracer,
		histograms: opts.Histograms,
		hasPlane:   plane != nil,
		hasTracer:  tracer != nil,
		batch:      make([]workload.Ref, opts.batchSize()),
		front:      cache.NewFront(),
		frontRecs:  make([]frontRec, opts.batchSize()),
	}
	telemetryOn := opts.telemetryOn()
	b.telPerRef = telemetryOn
	if telemetryOn {
		proc.Table.SetWalkDepthHist(&b.walkDepth)
	}
	for i, v := range variants {
		caches := cache.DefaultHierarchy()
		walker := mmu.NewWalker(proc.Table, caches, mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
		b.sims[i] = &simulator{
			name:   v.Name,
			hier:   core.NewHierarchy(v.Config, walker),
			walker: walker,
			caches: caches,
			pid:    proc.PID,
		}
		if telemetryOn {
			// Thread IDs start at 1; tid 0 is the OS row in trace
			// exports.
			b.sims[i].tel = telemetry.NewSink(tracer, uint8(i+1))
			b.sims[i].hier.SetTelemetry(b.sims[i].tel, &b.refClock)
		}
		sys.AddShootdownHandler(b.sims[i])
	}
	return b, master, nil
}

// step executes one reference of the identical stream against every
// variant. This is the simulator's hot path: in steady state (no
// swap-in, no OS churn event) it performs zero heap allocations per
// reference — guarded by testing.AllocsPerRun.
func (b *benchSim) step(ref int) error {
	// Advance simulated time: refClock is cumulative across warmup and
	// the measured run (monotonic — see the field comment), and stamps
	// both the event trace and TLB entry birth times.
	b.refClock++
	if b.hasTracer {
		b.tracer.SetNow(b.refClock)
	}
	// One trace-corrupt crossing per reference: an injected fault means
	// this record of the reference stream could not be decoded, which
	// aborts the job (there is no way to skip a reference and keep the
	// variants' streams aligned). The hasPlane/hasTracer booleans are
	// decided once at construction: disabled planes and tracers cost
	// nothing per reference, not even a nil-object method call.
	if b.hasPlane {
		if err := b.plane.Fail(fault.SiteTraceCorrupt); err != nil {
			return fmt.Errorf("%s: decoding trace record %d: %w", b.spec.Name, ref, err)
		}
	}
	va, write, gap := b.w.Next()
	vpn := va.Page()
	b.instructions += uint64(gap)
	// A touched page may have been swapped out under memory
	// pressure: service the major fault before the TLB probes.
	if _, _, ok := b.proc.Resolve(vpn); !ok {
		swappedIn, err := b.proc.EnsureResident(vpn)
		if err != nil {
			return err
		}
		if !swappedIn {
			return fmt.Errorf("%s: reference to unmapped vpn %d", b.spec.Name, vpn)
		}
	}
	var (
		frontLat   int
		events     []cache.LLCEvent
		demandMiss bool
		pfn0       arch.PFN
	)
	for vi, s := range b.sims {
		res := s.hier.Access(vpn)
		if res.Fault {
			return fmt.Errorf("%s/%s: fault at vpn %d", b.spec.Name, s.name, vpn)
		}
		// The first variant's translation drives the shared L1/L2
		// front; every other variant must translate identically (they
		// cache the same page table) and only replays the recorded
		// LLC-bound traffic against its private LLC.
		if vi == 0 {
			pfn0 = res.PFN
			paddr := res.PFN.Addr() + arch.PAddr(va.Offset())
			frontLat, events, demandMiss = b.front.DataAccess(paddr, write)
		} else if res.PFN != pfn0 {
			return fmt.Errorf("%s/%s: translation diverges at vpn %d", b.spec.Name, s.name, vpn)
		}
		lat := frontLat + s.replayLLC(events, demandMiss)
		if lat > l1HitLatency {
			s.memStall += uint64(lat - l1HitLatency)
		}
	}
	// Oracle check (sampled): every variant must agree with the
	// page table.
	if ref%1024 == 0 {
		want, _, ok := b.proc.Resolve(vpn)
		if !ok {
			return fmt.Errorf("%s: vpn %d vanished", b.spec.Name, vpn)
		}
		for _, s := range b.sims {
			if got, hit := s.hier.L2().LookupRun(vpn); hit && got.Translate(vpn) != want {
				return fmt.Errorf("%s/%s: stale L2 entry for vpn %d", b.spec.Name, s.name, vpn)
			}
		}
	}
	return nil
}

// oracleCheck is the sampled agreement check between one variant's L2
// TLB and the page table (see step's oracle block); Resolve and
// LookupRun are reads, so checking mid-batch cannot perturb state.
func (b *benchSim) oracleCheck(s *simulator, vpn arch.VPN) error {
	want, _, ok := b.proc.Resolve(vpn)
	if !ok {
		return fmt.Errorf("%s: vpn %d vanished", b.spec.Name, vpn)
	}
	if got, hit := s.hier.L2().LookupRun(vpn); hit && got.Translate(vpn) != want {
		return fmt.Errorf("%s/%s: stale L2 entry for vpn %d", b.spec.Name, s.name, vpn)
	}
	return nil
}

// stepBatch executes up to max references starting at stream index
// start, returning how many ran. It is the batched form of step and is
// observably equivalent to calling step max times (the equivalence
// goldens byte-compare the two): the workload decodes the whole batch
// up front, then each variant's simulator runs the batch back to back.
// Variant-major order is legal because the simulators share no
// order-sensitive mutable state — the page table and residency maps are
// read-only inside a batch, fault-plane sites draw from per-site
// independent RNG streams, and the shared telemetry histograms are
// commutative counters — while each variant still observes its own
// accesses in exact stream order. The three events that do couple the
// variants to shared state each land on a batch edge:
//
//   - a reference to a swapped-out page ends its batch (NextBatch
//     stops there) and is serviced scalar-style below, so the swap-in
//     and its shootdowns hit every variant at the same stream position
//     as in the scalar loop;
//   - churn bursts and cancellation checkpoints run between batches
//     (the driver clips batches to those boundaries);
//   - event tracing records the variant interleaving within one
//     reference, so traced jobs fall back to the scalar loop.
func (b *benchSim) stepBatch(start, max int) (int, error) {
	if b.hasTracer || max == 1 {
		if err := b.step(start); err != nil {
			return 0, err
		}
		return 1, nil
	}
	if max > len(b.batch) {
		max = len(b.batch)
	}
	n := b.w.NextBatch(b.batch[:max])
	base := b.refClock
	b.refClock = base + uint64(n)
	// Fault-plane crossings, one per decoded record. Site sequences are
	// independent streams, so grouping the crossings cannot perturb any
	// other site; a failure aborts the job at the same record index and
	// crossing sequence number as the scalar loop.
	if b.hasPlane {
		for k := 0; k < n; k++ {
			if err := b.plane.Fail(fault.SiteTraceCorrupt); err != nil {
				return 0, fmt.Errorf("%s: decoding trace record %d: %w", b.spec.Name, start+k, err)
			}
		}
	}
	for k := 0; k < n; k++ {
		b.instructions += uint64(b.batch[k].Gap)
	}
	// NextBatch guarantees every reference but the last is resident; a
	// non-resident final reference carries the swap-in fault and is
	// handled after the batched prefix.
	prefix := n
	lastVPN := b.batch[n-1].VA.Page()
	_, _, lastResident := b.proc.Resolve(lastVPN)
	if !lastResident {
		prefix = n - 1
	}
	b.frontEvents = b.frontEvents[:0]
	// The sampled oracle fires where (start+k)%1024 == 0; batches are
	// shorter than the sampling period, so precomputing the single
	// qualifying batch index replaces a modulo per reference per variant
	// with one compare.
	oracleK := (1024 - start%1024) % 1024
	// The first variant's pass and the replay passes have different
	// per-reference bodies (record vs. replay), so they are separate
	// loops rather than one loop with a per-reference discriminant.
	for vi, s := range b.sims {
		hier := s.hier
		nextOracle := oracleK
		// Keep the stall total in a register for the whole pass.
		stall := s.memStall
		// Reslice the batch and recording lanes to the prefix once, so
		// the per-reference indexing below is provably in bounds.
		batch, recs := b.batch[:prefix], b.frontRecs[:prefix]
		if vi == 0 {
			// Recording pass: advance the shared L1/L2 front in stream
			// order and capture each reference's outcome for the replay
			// passes.
			for k := 0; k < prefix; k++ {
				if b.telPerRef {
					// Replay the per-reference clock so fills stamp the
					// same birth times (hence lifetime histograms) as the
					// scalar loop. A variant's TLB state depends only on
					// its own access sequence, which is in stream order
					// here.
					b.refClock = base + uint64(k) + 1
				}
				r := &batch[k]
				vpn := r.VA.Page()
				res := hier.Access(vpn)
				if res.Fault {
					return 0, fmt.Errorf("%s/%s: fault at vpn %d", b.spec.Name, s.name, vpn)
				}
				rec := &recs[k]
				paddr := res.PFN.Addr() + arch.PAddr(r.VA.Offset())
				lat, events, demandMiss := b.front.DataAccess(paddr, r.Write)
				rec.pfn = res.PFN
				rec.lat = int32(lat)
				rec.demand = demandMiss
				rec.lo = int32(len(b.frontEvents))
				b.frontEvents = append(b.frontEvents, events...)
				rec.hi = int32(len(b.frontEvents))
				// The recording variant replays its own LLC-bound
				// requests too: the front stops at L2, and every
				// variant's LLC is private.
				if len(events) != 0 {
					lat += s.replayLLC(events, demandMiss)
				}
				if lat > l1HitLatency {
					stall += uint64(lat - l1HitLatency)
				}
				if k == nextOracle {
					nextOracle += 1024
					if err := b.oracleCheck(s, vpn); err != nil {
						return 0, err
					}
				}
			}
		} else {
			// Replay pass: check translation agreement with the recorded
			// pass and replay its LLC-bound traffic against this
			// variant's private LLC.
			for k := 0; k < prefix; k++ {
				if b.telPerRef {
					b.refClock = base + uint64(k) + 1
				}
				vpn := batch[k].VA.Page()
				res := hier.Access(vpn)
				if res.Fault {
					return 0, fmt.Errorf("%s/%s: fault at vpn %d", b.spec.Name, s.name, vpn)
				}
				rec := &recs[k]
				if res.PFN != rec.pfn {
					return 0, fmt.Errorf("%s/%s: translation diverges at vpn %d", b.spec.Name, s.name, vpn)
				}
				// Most references are satisfied inside the shared L1/L2
				// and record no LLC-bound requests; skip the replay call
				// (and its slice construction) outright for those.
				lat := int(rec.lat)
				if rec.lo != rec.hi {
					lat += s.replayLLC(b.frontEvents[rec.lo:rec.hi], rec.demand)
				}
				if lat > l1HitLatency {
					stall += uint64(lat - l1HitLatency)
				}
				if k == nextOracle {
					nextOracle += 1024
					if err := b.oracleCheck(s, vpn); err != nil {
						return 0, err
					}
				}
			}
		}
		s.memStall = stall
	}
	b.refClock = base + uint64(n)
	if !lastResident {
		// Service the major fault, then run the faulting reference
		// scalar-style so every variant observes the swap-in (and any
		// shootdowns it raised) at the same point in its stream.
		swappedIn, err := b.proc.EnsureResident(lastVPN)
		if err != nil {
			return 0, err
		}
		if !swappedIn {
			return 0, fmt.Errorf("%s: reference to unmapped vpn %d", b.spec.Name, lastVPN)
		}
		r := &b.batch[n-1]
		var (
			frontLat   int
			events     []cache.LLCEvent
			demandMiss bool
			pfn0       arch.PFN
		)
		for vi, s := range b.sims {
			res := s.hier.Access(lastVPN)
			if res.Fault {
				return 0, fmt.Errorf("%s/%s: fault at vpn %d", b.spec.Name, s.name, lastVPN)
			}
			if vi == 0 {
				pfn0 = res.PFN
				paddr := res.PFN.Addr() + arch.PAddr(r.VA.Offset())
				frontLat, events, demandMiss = b.front.DataAccess(paddr, r.Write)
			} else if res.PFN != pfn0 {
				return 0, fmt.Errorf("%s/%s: translation diverges at vpn %d", b.spec.Name, s.name, lastVPN)
			}
			lat := frontLat + s.replayLLC(events, demandMiss)
			if lat > l1HitLatency {
				s.memStall += uint64(lat - l1HitLatency)
			}
		}
		if (start+n-1)%1024 == 0 {
			want, _, ok := b.proc.Resolve(lastVPN)
			if !ok {
				return 0, fmt.Errorf("%s: vpn %d vanished", b.spec.Name, lastVPN)
			}
			for _, s := range b.sims {
				if got, hit := s.hier.L2().LookupRun(lastVPN); hit && got.Translate(lastVPN) != want {
					return 0, fmt.Errorf("%s/%s: stale L2 entry for vpn %d", b.spec.Name, s.name, lastVPN)
				}
			}
		}
	}
	return n, nil
}

// runRefs drives count references through stepBatch, clipping batches
// so no batch crosses a cancellation checkpoint (every ctxCheckEvery
// references, where the scalar loop also checked) or a churn boundary
// (churn mutates VM state between references, so it must land between
// batches exactly where the scalar loop ran it). churn may be nil.
func (b *benchSim) runRefs(opts Options, count, churnEvery int, churn func(ref int) error) error {
	for i := 0; i < count; {
		if i%ctxCheckEvery == 0 {
			if err := opts.canceled(); err != nil {
				return fmt.Errorf("%s: %w", b.spec.Name, err)
			}
		}
		max := count - i
		if toCheck := ctxCheckEvery - i%ctxCheckEvery; max > toCheck {
			max = toCheck
		}
		if churnEvery > 0 {
			// The next churn runs after reference cb; the batch may
			// include cb but nothing beyond it.
			cb := i - i%churnEvery + churnEvery - 1
			if toChurn := cb + 1 - i; max > toChurn {
				max = toChurn
			}
		}
		n, err := b.stepBatch(i, max)
		if err != nil {
			return err
		}
		i += n
		if churnEvery > 0 && (i-1)%churnEvery == churnEvery-1 {
			if err := churn(i - 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// audit runs the full invariant checkpoint for this job when enabled:
// the OS-level auditors plus, per variant, TLB↔pagetable coherence and
// the CoLT coalescing invariant.
func (b *benchSim) audit(opts Options, where string) error {
	if !opts.CheckInvariants {
		return nil
	}
	if err := auditSystem(opts, where, b.sys); err != nil {
		return err
	}
	for _, s := range b.sims {
		err := invariant.Check(
			invariant.AuditTLBCoherence(s.name, s.hier, b.proc.Table),
			invariant.AuditCoalescing(s.name, s.hier, b.proc.Table))
		if err != nil {
			return fmt.Errorf("invariant check %s (%s): %w", where, s.name, err)
		}
	}
	return nil
}

// resetStats zeroes measurement state after warmup. Telemetry
// histograms reset with the counters so embedded distributions cover
// the measured run only; refClock deliberately keeps running so entry
// lifetimes stay monotonic across the boundary.
func (b *benchSim) resetStats() {
	b.instructions = 0
	b.walkDepth = telemetry.Hist{}
	for _, s := range b.sims {
		s.hier.ResetStats()
		s.memStall = 0
		s.tel.ResetHists()
	}
}

// result snapshots every variant's counters into a BenchResult.
func (b *benchSim) result() *BenchResult {
	res := &BenchResult{
		Bench:        b.spec.Name,
		Setup:        b.setup,
		Contig:       b.contig,
		Instructions: b.instructions,
	}
	if b.histograms {
		res.Hists = &metrics.RecordHists{
			ContigRun: metrics.HistFrom(&b.contig.RunLenHist),
			WalkDepth: metrics.HistFrom(&b.walkDepth),
		}
	}
	for _, s := range b.sims {
		st := s.hier.Stats()
		var rejectedPct float64
		if _, sb2 := s.hier.Subblock(); sb2 != nil && sb2.Stats().Fills > 0 {
			rejectedPct = 100 * float64(sb2.Rejected()) / float64(sb2.Stats().Fills)
		}
		vr := VariantResult{
			Name:                s.name,
			Policy:              s.hier.Config().Policy.String(),
			TLB:                 st,
			Levels:              s.hier.LevelStats(),
			Prefetch:            s.hier.PrefetchStats(),
			SubblockRejectedPct: rejectedPct,
			Run: perf.Run{
				Instructions:   b.instructions,
				MemStallCycles: s.memStall,
				WalkCycles:     st.WalkCycles,
			},
		}
		if b.histograms && s.tel != nil {
			vr.Hists = &metrics.VariantHists{
				CoalesceLen: metrics.HistFrom(&s.tel.CoalesceLen),
				WalkCycles:  metrics.HistFrom(&s.tel.WalkCycles),
				EntryLife:   metrics.HistFrom(&s.tel.EntryLife),
			}
		}
		res.Variants = append(res.Variants, vr)
	}
	return res
}

// RunBenchmark runs one benchmark under one system setup, simulating
// every TLB variant over the identical reference stream (the paper's
// trace-driven methodology, §5.2.1). All variants observe the same OS
// events; each has private TLBs, MMU caches, and data caches. The
// variants deliberately share one goroutine: they must observe the
// same reference stream and shootdown sequence in lockstep, so
// parallelism lives one level up, across (benchmark × setup) jobs.
func RunBenchmark(spec workload.Spec, setup SystemSetup, opts Options, variants []Variant) (*BenchResult, error) {
	start := time.Now()
	label := jobLabel(metrics.KindBench, spec.Name, setup.Name)
	var spans telemetry.Spans
	if opts.Progress != nil {
		spans.OnPhase(func(phase string) { opts.Progress.Phase(label, phase) })
	}
	spans.Begin("build", 0)
	if err := opts.canceled(); err != nil {
		return nil, fmt.Errorf("%s: %w", spec.Name, err)
	}
	b, master, err := newBenchSim(spec, setup, opts, variants)
	if err != nil {
		return nil, err
	}
	churnRNG := master.Stream("midrun-churn")
	var churnProc *vm.Process
	if opts.MidRunChurn {
		churnProc, err = b.sys.NewProcess()
		if err != nil {
			return nil, err
		}
	}

	spans.Begin("warmup", b.refClock)
	if err := b.runRefs(opts, opts.Warmup, 0, nil); err != nil {
		return nil, err
	}
	if err := b.audit(opts, "after warmup"); err != nil {
		return nil, err
	}
	b.resetStats()
	spans.Begin("simulate", b.refClock)

	churnEvery := 0
	if opts.MidRunChurn && opts.Refs >= 8 {
		churnEvery = opts.Refs / 8
	}
	churn := func(i int) error {
		// OS activity mid-run: small allocations and frees that can
		// trigger compaction, THP splits, and TLB shootdowns.
		if reg, err := churnProc.Malloc(churnRNG.IntRange(1, 32)); err == nil && churnRNG.Bool(0.5) {
			if err := churnProc.Free(reg); err != nil {
				return err
			}
		}
		// The churn burst is exactly where migrations, splits, and
		// shootdowns concentrate — audit right after it.
		return b.audit(opts, fmt.Sprintf("after churn burst %d", i/churnEvery))
	}
	if err := b.runRefs(opts, opts.Refs, churnEvery, churn); err != nil {
		return nil, err
	}
	if err := b.audit(opts, "at run end"); err != nil {
		return nil, err
	}
	spans.End(b.refClock)
	res := b.result()
	if opts.Histograms {
		res.Spans = spans.All()
	}
	if opts.Metrics != nil {
		seed := seedFor(opts.Seed, spec.Name, setup.Name)
		opts.Metrics.Add(res.MetricsRecord(seed), time.Since(start))
		opts.Metrics.AddSpans(metrics.KindBench, spec.Name, setup.Name, spans.All())
	}
	if opts.Events != nil {
		threads := make([]string, 0, len(b.sims)+1)
		threads = append(threads, "os")
		for _, s := range b.sims {
			threads = append(threads, s.name)
		}
		opts.Events.Add(telemetry.JobTrace{
			Label:   label,
			Threads: threads,
			Spans:   spans.All(),
			Events:  b.tracer.Events(),
		})
	}
	return res, nil
}

// jobMeta labels one scheduler job for failure reporting: the driver
// kind plus the benchmark and setup the job simulates.
type jobMeta struct {
	kind  string
	bench string
	setup string
}

// mapJobs fans items across the scheduler with this package's
// robustness contract:
//
//   - a panic in one job becomes that job's *sched.PanicError;
//   - a job that failed on an injected fault is re-attempted up to
//     opts.Retries times, each attempt reseeding the fault plane with
//     its attempt number (deterministic retry trajectory);
//   - every terminal failure is recorded in the metrics collector's
//     Failures section (kind/bench/setup/attempts/error);
//   - ok[i] reports whether results[i] is valid, so drivers render
//     the surviving jobs.
//
// With fault injection disabled a failure is a real bug, and mapJobs
// keeps the strict pre-fault-plane contract: the first error (by job
// index) is returned and no partial results are. Under injection it
// degrades gracefully, erroring only when no job survived.
func mapJobs[S, T any](opts Options, items []S, meta func(S) jobMeta, run func(item S, opts Options) (T, error)) (results []T, ok []bool, err error) {
	attempts := make([]int, len(items))
	label := func(i int) string {
		m := meta(items[i])
		return jobLabel(m.kind, m.bench, m.setup)
	}
	pool := opts.pool().SetLabeler(label)
	opts.Progress.AddJobs(len(items))
	results, errs := sched.MapPartial(pool, len(items), func(i int) (T, error) {
		var out T
		err := sched.Retry(1+opts.Retries, 0, fault.IsInjected, func(attempt int) error {
			attempts[i] = attempt + 1
			o := opts
			o.attempt = attempt
			var runErr error
			out, runErr = run(items[i], o)
			return runErr
		})
		opts.Progress.Done(label(i), err == nil)
		return out, err
	})
	ok = make([]bool, len(items))
	var firstErr error
	failed, canceled := 0, 0
	for i, jobErr := range errs {
		if jobErr == nil {
			ok[i] = true
			continue
		}
		failed++
		jobCanceled := errors.Is(jobErr, context.Canceled) || errors.Is(jobErr, context.DeadlineExceeded)
		if jobCanceled {
			canceled++
		}
		if firstErr == nil {
			firstErr = jobErr
		}
		if opts.Metrics != nil {
			var te *sched.TimeoutError
			timedOut := errors.As(jobErr, &te)
			m := meta(items[i])
			f := metrics.Failure{
				Kind:     m.kind,
				Bench:    m.bench,
				Setup:    m.setup,
				Error:    jobErr.Error(),
				Injected: fault.IsInjected(jobErr),
				TimedOut: timedOut,
				Canceled: jobCanceled,
			}
			// A timed-out job's goroutine is still running and still
			// owns attempts[i]; leave Attempts zero rather than race.
			if !timedOut {
				f.Attempts = attempts[i]
			}
			opts.Metrics.AddFailure(f)
		}
	}
	if failed == 0 {
		return results, ok, nil
	}
	// Cancellation degrades like injection: an interrupted run renders
	// its completed jobs and records the rest as canceled failures,
	// so a SIGINT'd batch still writes a coherent (partial) report
	// instead of dying mid-write. Real errors with faults disabled
	// keep the strict first-error contract.
	if (!opts.Faults.Enabled() && canceled == 0) || failed == len(items) {
		return nil, nil, firstErr
	}
	return results, ok, nil
}

// surviving filters a mapJobs result down to its successful entries,
// preserving input order.
func surviving[T any](results []T, ok []bool) []T {
	out := make([]T, 0, len(results))
	for i := range results {
		if ok[i] {
			out = append(out, results[i])
		}
	}
	return out
}
