package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"colt/internal/telemetry"
)

// TestTraceEventsExport is the Perfetto smoke test: a real (small)
// experiment run with event tracing attached must export valid Chrome
// trace-event JSON — loadable by chrome://tracing and ui.perfetto.dev —
// with every event carrying the required keys, and the rendered bytes
// must be independent of the parallel width the jobs ran at.
func TestTraceEventsExport(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full golden reference streams")
	}
	render := func(parallel int) []byte {
		opts := GoldenOptions()
		opts.Parallel = parallel
		opts.Events = new(telemetry.TraceSet)
		if _, err := Table1(opts); err != nil {
			t.Fatal(err)
		}
		if opts.Events.Len() == 0 {
			t.Fatal("no job traces collected")
		}
		var buf bytes.Buffer
		if err := opts.Events.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	out := render(1)

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace export has no events")
	}
	phases := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "pid", "name"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d lacks required key %q: %v", i, key, ev)
			}
		}
		ph, _ := ev["ph"].(string)
		phases[ph] = true
		// Every non-metadata event is on the simulated timeline.
		if ph != "M" {
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("event %d (ph=%q) lacks ts: %v", i, ph, ev)
			}
		}
	}
	// Metadata rows, phase spans, and instant events must all be
	// present in a run that executed warmup + simulate with tracing.
	for _, ph := range []string{"M", "X", "i"} {
		if !phases[ph] {
			t.Errorf("trace export has no %q events (got %v)", ph, phases)
		}
	}

	// Scheduling must not leak into the artifact: the rendered trace is
	// byte-identical whether the jobs ran serially or on 8 workers.
	if wide := render(8); !bytes.Equal(out, wide) {
		t.Error("trace export differs between parallel=1 and parallel=8")
	}
}
