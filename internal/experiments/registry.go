package experiments

import (
	"fmt"
	"sort"
	"strings"

	"colt/internal/workload"
)

// NamedExperiment is one runnable artifact of the serving registry: a
// stable name, a one-line description, and a driver that runs the
// experiment emitting structured records into opts.Metrics. Unlike
// the CLI registry in cmd/experiments, entries here produce no text —
// their whole output is the metrics report, which is what the serving
// daemon caches and returns. Run must be safe to call concurrently
// with other entries (each call builds private simulation state).
type NamedExperiment struct {
	Name string
	Desc string
	Run  func(opts Options) error
}

// Registry returns the experiments the serving daemon exposes, in
// display order. Every entry is deterministic: for a fixed Options
// snapshot its metrics report is byte-identical across runs, worker
// counts, and machines — the property that makes reports
// content-addressable by their canonical spec.
func Registry() []NamedExperiment {
	return []NamedExperiment{
		{Name: "table1", Desc: "Table 1: real-system TLB MPMI, THS on/off",
			Run: func(opts Options) error { _, err := Table1(opts); return err }},
		{Name: "contig", Desc: "Figures 7-15: contiguity CDFs per kernel configuration",
			Run: func(opts Options) error {
				for _, setup := range []SystemSetup{SetupTHSOnNormal, SetupTHSOffNormal, SetupTHSOffLow} {
					if _, err := ContiguityCDFs(setup, opts); err != nil {
						return err
					}
				}
				return nil
			}},
		{Name: "fig16", Desc: "Figure 16: average contiguity vs memhog, THS on",
			Run: func(opts Options) error { _, err := Figure16(opts); return err }},
		{Name: "fig17", Desc: "Figure 17: average contiguity vs memhog, THS off",
			Run: func(opts Options) error { _, err := Figure17(opts); return err }},
		{Name: "fig18", Desc: "Figure 18: % of baseline TLB misses eliminated",
			Run: func(opts Options) error { _, err := RunStandardEvaluation(opts); return err }},
		{Name: "fig19", Desc: "Figure 19: CoLT-SA index left-shift sweep",
			Run: func(opts Options) error { _, err := Figure19(opts); return err }},
		{Name: "fig20", Desc: "Figure 20: L2 associativity study",
			Run: func(opts Options) error { _, err := Figure20(opts); return err }},
		{Name: "fig21", Desc: "Figure 21: modeled performance improvement",
			Run: func(opts Options) error { _, err := RunStandardEvaluation(opts); return err }},
		{Name: "fa-ablation", Desc: "Ablation: CoLT-FA with/without L2 fill (§7.1.3)",
			Run: func(opts Options) error { _, err := AblationFAL2Fill(opts); return err }},
		{Name: "all-ablation", Desc: "Ablation: CoLT-All with/without L2 fill (§7.1.3)",
			Run: func(opts Options) error { _, err := AblationAllL2Fill(opts); return err }},
		{Name: "prefetch", Desc: "Extension: CoLT vs sequential TLB prefetching",
			Run: func(opts Options) error { _, err := PrefetchComparison(opts); return err }},
		{Name: "subblock", Desc: "Extension: CoLT-SA vs partial-subblock TLBs",
			Run: func(opts Options) error { _, err := SubblockComparison(opts); return err }},
		{Name: "refinements", Desc: "Extension: future-work refinements ablation",
			Run: func(opts Options) error { _, err := RefinementsAblation(opts); return err }},
		{Name: "supsize", Desc: "Extension: CoLT-FA superpage-TLB size sensitivity",
			Run: func(opts Options) error { _, err := SupSizeSensitivity(opts); return err }},
		{Name: "l2size", Desc: "Extension: L2 TLB size sensitivity",
			Run: func(opts Options) error { _, err := L2SizeSensitivity(opts); return err }},
		{Name: "virt", Desc: "Extension: CoLT under virtualization (2D walks)",
			Run: func(opts Options) error { _, err := VirtualizationComparison(opts); return err }},
		{Name: "timeline", Desc: "Contiguity over time under memhog pressure",
			Run: func(opts Options) error {
				specs := make([]workload.Spec, 0, 2)
				for _, name := range []string{"Mcf", "Sjeng"} {
					spec, err := workload.ByName(name)
					if err != nil {
						return err
					}
					specs = append(specs, spec)
				}
				_, err := Timelines(specs, SetupTHSOnMemhog50, opts, 6)
				return err
			}},
	}
}

// RegistryNames returns every registry name, sorted.
func RegistryNames() []string {
	reg := Registry()
	names := make([]string, len(reg))
	for i, e := range reg {
		names[i] = e.Name
	}
	sort.Strings(names)
	return names
}

// ByName resolves a registry entry; an unknown name's error lists the
// valid set so API callers can self-correct.
func ByName(name string) (NamedExperiment, error) {
	for _, e := range Registry() {
		if e.Name == name {
			return e, nil
		}
	}
	return NamedExperiment{}, fmt.Errorf("unknown experiment %q; valid experiments: %s",
		name, strings.Join(RegistryNames(), ", "))
}
