package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"colt/internal/fault"
	"colt/internal/metrics"
	"colt/internal/workload"
)

// The chaos suite is the fault plane's end-to-end proof: every site can
// fire, injected failures surface as structured errors (never panics),
// surviving jobs still produce results, and the whole degraded run is
// byte-identical across scheduler widths. `make chaos` runs these
// tests; they are also part of the ordinary test run.

// chaosSpec returns a spec with the given per-crossing rates.
func chaosSpec(rates map[fault.Site]float64) fault.Spec {
	return fault.Spec{Rates: rates}
}

// TestChaosHardSitesFailRun forces the two hard sites — allocation
// during system build and trace decoding — to fire on the first
// crossing and requires a structured injected error, not a panic.
func TestChaosHardSitesFailRun(t *testing.T) {
	spec, _ := workload.ByName("Mcf")
	for _, site := range []fault.Site{fault.SiteBuddyAlloc, fault.SiteTraceCorrupt} {
		opts := GoldenOptions()
		opts.Faults = chaosSpec(map[fault.Site]float64{site: 1})
		_, err := RunBenchmark(spec, SetupTHSOnNormal, opts, StandardVariants())
		if err == nil {
			t.Fatalf("site %s at rate 1.0 did not fail the run", site)
		}
		if !fault.IsInjected(err) {
			t.Fatalf("site %s produced a non-injected error: %v", site, err)
		}
		if !strings.Contains(err.Error(), string(site)) {
			t.Fatalf("site %s error does not name the site: %v", site, err)
		}
	}
}

// TestChaosSoftSitesDegradeGracefully forces the two recoverable sites
// — THP allocation and compaction migration — to fail on every
// crossing; the simulated OS must fall back to base pages and unmoved
// frames and the run must still complete.
func TestChaosSoftSitesDegradeGracefully(t *testing.T) {
	spec, _ := workload.ByName("Mcf")
	opts := GoldenOptions()
	opts.CheckInvariants = true
	opts.Faults = chaosSpec(map[fault.Site]float64{
		fault.SiteTHPAlloc:       1,
		fault.SiteCompactMigrate: 1,
	})
	res, err := RunBenchmark(spec, SetupTHSOnNormal, opts, StandardVariants())
	if err != nil {
		t.Fatalf("run with failing THP+compaction did not degrade gracefully: %v", err)
	}
	if len(res.Variants) != len(StandardVariants()) {
		t.Fatalf("degraded run produced %d variants, want %d", len(res.Variants), len(StandardVariants()))
	}
}

// TestChaosStrictInvariantsCleanWithoutFaults is the auditors'
// false-positive check: a full unfaulted evaluation with every
// invariant checkpoint armed must pass clean.
func TestChaosStrictInvariantsCleanWithoutFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full evaluation")
	}
	opts := GoldenOptions()
	opts.CheckInvariants = true
	e, err := RunStandardEvaluation(opts)
	if err != nil {
		t.Fatalf("strict-invariants unfaulted evaluation failed: %v", err)
	}
	if len(e.Results) != len(workload.All()) {
		t.Fatalf("unfaulted evaluation kept %d/%d benchmarks", len(e.Results), len(workload.All()))
	}
}

// chaosOptions is the soak configuration: every site armed at a rate
// tuned so that some jobs die (even after a retry) and some survive,
// with all invariant auditors running at their checkpoints.
func chaosOptions(parallel int) Options {
	opts := GoldenOptions()
	opts.Parallel = parallel
	opts.CheckInvariants = true
	opts.Retries = 1
	opts.JobTimeout = 5 * time.Minute
	opts.Metrics = metrics.NewCollector()
	opts.Faults = chaosSpec(map[fault.Site]float64{
		fault.SiteBuddyAlloc:     2e-6,
		fault.SiteCompactMigrate: 2e-3,
		fault.SiteTHPAlloc:       2e-3,
		fault.SiteTraceCorrupt:   5e-5,
	})
	return opts
}

// TestChaosDeterministicAcrossWidths is the acceptance soak: a faulted,
// audited evaluation where some jobs fail and the rest render, whose
// full report — results AND failure records — is byte-identical
// between a serial and an eight-worker pool.
func TestChaosDeterministicAcrossWidths(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak runs full golden-size streams")
	}
	report := func(parallel int) (*Evaluation, []byte) {
		opts := chaosOptions(parallel)
		e, err := RunStandardEvaluation(opts)
		if err != nil {
			t.Fatalf("parallel=%d: faulted evaluation failed outright: %v", parallel, err)
		}
		js, err := opts.Metrics.Report("chaos", opts.Snapshot()).StableJSON()
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		failures := opts.Metrics.Failures()
		if len(failures) == 0 {
			t.Fatalf("parallel=%d: chaos rates injected no failures; raise the rates", parallel)
		}
		for _, f := range failures {
			if !f.Injected {
				t.Fatalf("parallel=%d: non-injected failure under chaos: %+v", parallel, f)
			}
			if f.TimedOut {
				t.Fatalf("parallel=%d: unexpected timeout under chaos: %+v", parallel, f)
			}
			if f.Attempts != 1+chaosOptions(parallel).Retries {
				t.Fatalf("parallel=%d: failure recorded after %d attempts, want %d: %+v",
					parallel, f.Attempts, 1+chaosOptions(parallel).Retries, f)
			}
		}
		if len(e.Results) == 0 {
			t.Fatalf("parallel=%d: no benchmark survived; lower the rates", parallel)
		}
		if len(e.Results) == len(workload.All()) {
			t.Fatalf("parallel=%d: every benchmark survived; the soak is not exercising degradation", parallel)
		}
		return e, js
	}

	serialEval, serial := report(1)
	_, wide := report(8)
	if !bytes.Equal(serial, wide) {
		t.Errorf("chaos report differs between parallel=1 and parallel=8:\n%s",
			strings.Join(metrics.Diff(wide, serial), "\n"))
	}
	t.Logf("chaos soak: %d/%d benchmarks survived", len(serialEval.Results), len(workload.All()))
}

// TestChaosFaultsOffIsByteIdentical proves the fault plane is inert
// when disabled: a collector-backed golden-size run with a zero Spec
// must produce byte-identical reports with and without the plane code
// in the path (i.e. against a plain GoldenOptions run).
func TestChaosFaultsOffIsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("golden-size streams")
	}
	run := func(opts Options) []byte {
		opts.Metrics = metrics.NewCollector()
		if _, err := Table1(opts); err != nil {
			t.Fatal(err)
		}
		js, err := opts.Metrics.Report("table1", opts.Snapshot()).StableJSON()
		if err != nil {
			t.Fatal(err)
		}
		return js
	}
	plain := run(GoldenOptions())
	zero := GoldenOptions()
	zero.Faults = fault.Spec{}
	if !bytes.Equal(plain, run(zero)) {
		t.Error("zero fault spec changed the table1 report")
	}
}
