package experiments

import (
	"strings"
	"testing"

	"colt/internal/core"
	"colt/internal/workload"
)

func TestPrefetchComparisonSingleBench(t *testing.T) {
	// Run the variant set on one benchmark by hand to keep the test
	// fast, checking the prefetch bookkeeping plumbs through.
	spec, _ := workload.ByName("Bzip2")
	variants := []Variant{
		{Name: "baseline", Config: core.BaselineConfig()},
		{Name: "seq-prefetch", Config: core.SeqPrefetchConfig()},
	}
	res, err := RunBenchmark(spec, SetupTHSOnNormal, quickest(), variants)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := res.Variant("baseline")
	pf, _ := res.Variant("seq-prefetch")
	if pf.Prefetch.PrefetchWalks == 0 {
		t.Fatal("no prefetch walks recorded")
	}
	if pf.Prefetch.BufferHits == 0 {
		t.Fatal("prefetcher never hit on a streaming benchmark")
	}
	if pf.TLB.L2Misses >= base.TLB.L2Misses {
		t.Fatalf("prefetching did not reduce demand walks on Bzip2: %d vs %d",
			pf.TLB.L2Misses, base.TLB.L2Misses)
	}
	out := RenderPrefetchComparison([]PrefetchRow{{
		Bench: "x", PrefetchElim: 10, SAElim: 40, AllElim: 50, WalkOverheadPct: 120,
	}})
	if !strings.Contains(out, "Prefetch walk overhead") {
		t.Fatal("render malformed")
	}
}

func TestRefinementVariants(t *testing.T) {
	vs := RefinementVariants()
	if len(vs) != 5 {
		t.Fatalf("variants = %d", len(vs))
	}
	if !vs[2].Config.Refinements.GracefulInvalidation {
		t.Fatal("graceful variant not configured")
	}
	if !vs[3].Config.Refinements.CoalescingAwareLRU {
		t.Fatal("bias variant not configured")
	}
	spec, _ := workload.ByName("Gobmk")
	res, err := RunBenchmark(spec, SetupTHSOnNormal, quickest(), vs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Variants) != 5 {
		t.Fatalf("results = %d", len(res.Variants))
	}
}

func TestSupSizeSensitivitySingleBench(t *testing.T) {
	spec, _ := workload.ByName("Milc")
	variants := []Variant{{Name: "baseline", Config: core.BaselineConfig()}}
	for _, n := range SupSizes {
		cfg := core.CoLTFAConfig()
		cfg.SupEntries = n
		variants = append(variants, Variant{Name: sizeName("fa", n), Config: cfg})
	}
	res, err := RunBenchmark(spec, SetupTHSOnNormal, quickest(), variants)
	if err != nil {
		t.Fatal(err)
	}
	// Bigger superpage TLBs must not lose misses (monotone in quick
	// runs is too strict; just require the 32-entry config to beat the
	// 4-entry config).
	small, _ := res.Variant(sizeName("fa", 4))
	big, _ := res.Variant(sizeName("fa", 32))
	if big.TLB.L2Misses > small.TLB.L2Misses {
		t.Fatalf("32-entry FA worse than 4-entry: %d vs %d", big.TLB.L2Misses, small.TLB.L2Misses)
	}
	out := RenderSupSizeSensitivity([]SupSizeRow{{Bench: "x", Elim: map[int]float64{4: 1, 8: 2, 16: 3, 32: 4}}})
	if !strings.Contains(out, "FA 32-entry") {
		t.Fatal("render malformed")
	}
}

func sizeName(prefix string, n int) string {
	return prefix + "-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestL2SizeSensitivitySingleBench(t *testing.T) {
	spec, _ := workload.ByName("Omnetpp")
	var variants []Variant
	for _, n := range []int{64, 512} {
		base := core.BaselineConfig()
		base.L2Sets = n / base.L2Ways
		variants = append(variants, Variant{Name: sizeName("base", n), Config: base})
	}
	res, err := RunBenchmark(spec, SetupTHSOnNormal, quickest(), variants)
	if err != nil {
		t.Fatal(err)
	}
	small, _ := res.Variant("base-64")
	big, _ := res.Variant("base-512")
	if big.TLB.L2Misses > small.TLB.L2Misses {
		t.Fatalf("512-entry L2 worse than 64-entry: %d vs %d", big.TLB.L2Misses, small.TLB.L2Misses)
	}
	out := RenderL2SizeSensitivity([]L2SizeRow{{
		Bench:    "x",
		BaseMPMI: map[int]float64{64: 4, 128: 3, 256: 2, 512: 1},
		SAMPMI:   map[int]float64{64: 2, 128: 1.5, 256: 1, 512: 0.5},
	}})
	if !strings.Contains(out, "sa-512") {
		t.Fatal("render malformed")
	}
}

func TestVirtualizationSingleBench(t *testing.T) {
	opts := quickest()
	opts.Refs = 25_000
	spec, _ := workload.ByName("Bzip2") // streaming: misses are plentiful
	res, err := runVirtualized(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	base, all := res[0], res[1]
	if base.TLB.Accesses != uint64(opts.Refs) {
		t.Fatalf("accesses = %d", base.TLB.Accesses)
	}
	if base.TLB.L2Misses == 0 {
		t.Fatal("no virtualized misses")
	}
	if all.TLB.L2Misses >= base.TLB.L2Misses {
		t.Fatalf("CoLT-All did not help under virtualization: %d vs %d",
			all.TLB.L2Misses, base.TLB.L2Misses)
	}
	// 2D walks must cost more per walk than a flat 4-level walk ever
	// could at LLC-hit latency: check walk cycles per walk > 40.
	perWalk := float64(base.Run.WalkCycles) / float64(base.TLB.Walks)
	if perWalk < 40 {
		t.Fatalf("nested walks too cheap: %.1f cycles/walk", perWalk)
	}
	out := RenderVirtualization([]VirtRow{{Bench: "x", NativeElim: 50, VirtElim: 55, NativeSpeedup: 10, VirtSpeedup: 25, WalkInflation: 2.5}})
	if !strings.Contains(out, "Walk inflation") {
		t.Fatal("render malformed")
	}
}

func TestContiguityTimeline(t *testing.T) {
	opts := quickest()
	opts.Refs = 6_000
	spec, _ := workload.ByName("Gobmk")
	points, err := ContiguityTimeline(spec, SetupTHSOnNormal, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].RefsDone != 0 || points[3].RefsDone < opts.Refs-3 {
		t.Fatalf("sample positions wrong: %+v", points)
	}
	for _, p := range points {
		if p.MappedPages <= 0 || p.PageAvg < 1 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
	if _, err := ContiguityTimeline(spec, SetupTHSOnNormal, opts, 1); err == nil {
		t.Fatal("single-sample timeline accepted")
	}
	out := RenderTimeline("Gobmk", SetupTHSOnNormal, points)
	if !strings.Contains(out, "Contiguity over time") {
		t.Fatal("render malformed")
	}
}

func TestSubblockComparisonSingleBench(t *testing.T) {
	spec, _ := workload.ByName("Mcf")
	variants := []Variant{
		{Name: "baseline", Config: core.BaselineConfig()},
		{Name: "partial-subblock", Config: core.PartialSubblockConfig()},
		{Name: "colt-sa", Config: core.CoLTSAConfig(core.DefaultCoLTShift)},
	}
	res, err := RunBenchmark(spec, SetupTHSOnNormal, quickest(), variants)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := res.Variant("partial-subblock")
	if sb.TLB.Accesses == 0 {
		t.Fatal("subblock variant did not run")
	}
	out := RenderSubblockComparison([]SubblockRow{{Bench: "x", SubblockElim: 20, SAElim: 50, RejectedPct: 60}})
	if !strings.Contains(out, "Align-rejected") {
		t.Fatal("render malformed")
	}
}
