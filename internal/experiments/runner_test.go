package experiments

import (
	"testing"

	"colt/internal/workload"
)

func TestSetups(t *testing.T) {
	s := Setups()
	if len(s) != 5 {
		t.Fatalf("want 5 studied configurations, got %d", len(s))
	}
	if !s[0].THP || s[1].THP || s[0].MemhogPct != 0 || s[4].MemhogPct != 50 {
		t.Fatalf("setups malformed: %+v", s)
	}
}

func TestRunContiguityTHSContrast(t *testing.T) {
	spec, err := workload.ByName("Mcf")
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	on, err := RunContiguity(spec, SetupTHSOnNormal, opts)
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunContiguity(spec, SetupTHSOffNormal, opts)
	if err != nil {
		t.Fatal(err)
	}
	if on.NonSuperPages == 0 && on.SuperPages == 0 {
		t.Fatal("THS-on scan saw no pages")
	}
	if off.SuperPages != 0 {
		t.Fatal("THS-off produced superpages")
	}
	if off.AverageContiguity() < 1 {
		t.Fatalf("THS-off contiguity = %v", off.AverageContiguity())
	}
	t.Logf("Mcf contiguity: THS-on avg=%.1f (super=%d), THS-off avg=%.1f",
		on.AverageContiguity(), on.SuperPages, off.AverageContiguity())
}

func TestRunBenchmarkStandardVariants(t *testing.T) {
	spec, err := workload.ByName("Mcf")
	if err != nil {
		t.Fatal(err)
	}
	opts := QuickOptions()
	opts.MidRunChurn = true
	res, err := RunBenchmark(spec, SetupTHSOnNormal, opts, StandardVariants())
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions == 0 {
		t.Fatal("no instructions recorded")
	}
	base, ok := res.Variant("baseline")
	if !ok {
		t.Fatal("baseline variant missing")
	}
	if base.TLB.Accesses != uint64(opts.Refs) {
		t.Fatalf("baseline accesses = %d, want %d", base.TLB.Accesses, opts.Refs)
	}
	if base.TLB.L2Misses == 0 {
		t.Fatal("baseline saw no TLB misses; workload too small")
	}
	for _, name := range []string{"colt-sa", "colt-fa", "colt-all"} {
		v, ok := res.Variant(name)
		if !ok {
			t.Fatalf("variant %s missing", name)
		}
		if v.TLB.L2Misses >= base.TLB.L2Misses {
			t.Errorf("%s did not reduce L2 misses: %d vs %d", name, v.TLB.L2Misses, base.TLB.L2Misses)
		}
		if v.Run.WalkCycles >= base.Run.WalkCycles {
			t.Errorf("%s did not reduce walk cycles", name)
		}
		l1, l2 := v.MPMI()
		if l1 <= 0 || l2 <= 0 {
			t.Errorf("%s MPMI degenerate: %v/%v", name, l1, l2)
		}
	}
	if _, ok := res.Variant("nosuch"); ok {
		t.Fatal("phantom variant")
	}
}

func TestRunBenchmarkDeterministic(t *testing.T) {
	spec, _ := workload.ByName("Gobmk")
	opts := QuickOptions()
	opts.Refs = 20_000
	a, err := RunBenchmark(spec, SetupTHSOnNormal, opts, StandardVariants()[:2])
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchmark(spec, SetupTHSOnNormal, opts, StandardVariants()[:2])
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Variants {
		if a.Variants[i].TLB != b.Variants[i].TLB {
			t.Fatalf("run not deterministic: %+v vs %+v", a.Variants[i].TLB, b.Variants[i].TLB)
		}
	}
}

func TestMemhogSetupRuns(t *testing.T) {
	spec, _ := workload.ByName("Gobmk")
	opts := QuickOptions()
	opts.Refs = 10_000
	res, err := RunBenchmark(spec, SetupTHSOnMemhog25, opts, StandardVariants()[:1])
	if err != nil {
		t.Fatal(err)
	}
	if res.Setup.MemhogPct != 25 {
		t.Fatal("setup not recorded")
	}
}

func TestVariantSets(t *testing.T) {
	if len(StandardVariants()) != 4 {
		t.Fatal("standard variants")
	}
	if len(ShiftVariants()) != 4 {
		t.Fatal("shift variants")
	}
	names := map[string]bool{}
	for _, v := range StandardVariants() {
		names[v.Name] = true
	}
	if !names["baseline"] || !names["colt-sa"] || !names["colt-fa"] || !names["colt-all"] {
		t.Fatal("variant names")
	}
}
