package experiments

import (
	"fmt"

	"colt/internal/workload"
)

// HotPath is the standing hot-loop benchmark fixture: Mcf under "THS
// on, normal compaction" with the standard four variants at
// QuickOptions scale, warmed up and ready to step. It pins the refs/sec
// trajectory tracked in BENCH_hotpath.json: BenchmarkHotPath (repo
// root) drives Steps, the scalar baseline drives StepsScalar, and both
// run exactly the code RunBenchmark runs — the fixture exists so the
// benchmark can meter steady-state stepping without re-paying system
// build and warmup per measurement.
type HotPath struct {
	b   *benchSim
	ref int
}

// NewHotPath builds and warms the fixture. batch sizes the reference
// batches exactly as Options.BatchSize would (0 selects the default).
func NewHotPath(batch int) (*HotPath, error) {
	opts := QuickOptions()
	opts.BatchSize = batch
	spec, err := workload.ByName("Mcf")
	if err != nil {
		return nil, err
	}
	sim, _, err := newBenchSim(spec, SetupTHSOnNormal, opts, StandardVariants())
	if err != nil {
		return nil, err
	}
	h := &HotPath{b: sim}
	if err := h.Steps(opts.Warmup); err != nil {
		return nil, fmt.Errorf("hot-path warmup: %w", err)
	}
	return h, nil
}

// Steps runs n references through the batched engine (stepBatch, the
// loop RunBenchmark drives in steady state).
func (h *HotPath) Steps(n int) error {
	for done := 0; done < n; {
		max := len(h.b.batch)
		if left := n - done; max > left {
			max = left
		}
		ran, err := h.b.stepBatch(h.ref, max)
		if err != nil {
			return err
		}
		h.ref += ran
		done += ran
	}
	return nil
}

// StepsScalar runs n references through the pre-batching scalar loop
// (step), the baseline the refs/sec speedup is measured against.
func (h *HotPath) StepsScalar(n int) error {
	for i := 0; i < n; i++ {
		if err := h.b.step(h.ref); err != nil {
			return err
		}
		h.ref++
	}
	return nil
}

// Variants reports how many TLB variants each reference is simulated
// against (refs/sec counts references, each fanned across variants).
func (h *HotPath) Variants() int { return len(h.b.sims) }
