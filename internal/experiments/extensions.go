package experiments

import (
	"fmt"

	"colt/internal/core"
	"colt/internal/stats"
	"colt/internal/workload"
)

// This file holds the experiments that go beyond the paper's evaluation:
// the prefetching comparison the paper argues against qualitatively
// (§2.1/§2.4), ablations of the paper's stated future-work refinements
// (§4.1.5/§4.2.3), and sensitivity sweeps over the structure sizes the
// paper fixes.

// ---------------------------------------------------------------------
// CoLT vs sequential TLB prefetching.
// ---------------------------------------------------------------------

// PrefetchRow compares miss elimination and walk traffic: prefetching
// buys its hits with extra page walks, CoLT's coalescing is free.
type PrefetchRow struct {
	Bench string
	// Elimination of baseline L2 misses (demand walks).
	PrefetchElim, SAElim, AllElim float64
	// WalkOverheadPct is the prefetcher's extra page-walk traffic as a
	// percentage of the baseline's demand walks.
	WalkOverheadPct float64
}

// PrefetchComparison runs baseline, the sequential prefetcher, CoLT-SA
// and CoLT-All over the identical streams.
func PrefetchComparison(opts Options) ([]PrefetchRow, error) {
	variants := []Variant{
		{Name: "baseline", Config: core.BaselineConfig()},
		{Name: "seq-prefetch", Config: core.SeqPrefetchConfig()},
		{Name: "colt-sa", Config: core.CoLTSAConfig(core.DefaultCoLTShift)},
		{Name: "colt-all", Config: core.CoLTAllConfig()},
	}
	rows, ok, err := mapJobs(opts, workload.All(),
		func(spec workload.Spec) jobMeta {
			return jobMeta{kind: "prefetch", bench: spec.Name, setup: SetupTHSOnNormal.Name}
		},
		func(spec workload.Spec, opts Options) (PrefetchRow, error) {
			res, err := RunBenchmark(spec, SetupTHSOnNormal, opts, variants)
			if err != nil {
				return PrefetchRow{}, fmt.Errorf("prefetch comparison %s: %w", spec.Name, err)
			}
			base, _ := res.Variant("baseline")
			pf, _ := res.Variant("seq-prefetch")
			sa, _ := res.Variant("colt-sa")
			all, _ := res.Variant("colt-all")
			row := PrefetchRow{
				Bench:        spec.Name,
				PrefetchElim: stats.PercentEliminated(float64(base.TLB.L2Misses), float64(pf.TLB.L2Misses)),
				SAElim:       stats.PercentEliminated(float64(base.TLB.L2Misses), float64(sa.TLB.L2Misses)),
				AllElim:      stats.PercentEliminated(float64(base.TLB.L2Misses), float64(all.TLB.L2Misses)),
			}
			if base.TLB.Walks > 0 {
				row.WalkOverheadPct = 100 * float64(pf.Prefetch.PrefetchWalks) / float64(base.TLB.Walks)
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	return surviving(rows, ok), nil
}

// RenderPrefetchComparison formats the comparison as text.
func RenderPrefetchComparison(rows []PrefetchRow) string {
	t := stats.NewTable("Benchmark", "Prefetch L2 elim", "CoLT-SA L2 elim", "CoLT-All L2 elim", "Prefetch walk overhead")
	var p, sa, all, ov stats.Summary
	for _, r := range rows {
		t.AddRow(r.Bench, r.PrefetchElim, r.SAElim, r.AllElim, r.WalkOverheadPct)
		p.Add(r.PrefetchElim)
		sa.Add(r.SAElim)
		all.Add(r.AllElim)
		ov.Add(r.WalkOverheadPct)
	}
	t.AddRow("Average", p.Mean(), sa.Mean(), all.Mean(), ov.Mean())
	return "Extension: CoLT vs sequential TLB prefetching (% of baseline L2 misses eliminated;\n" +
		"prefetch overhead = extra walks as % of baseline demand walks)\n" + t.String()
}

// ---------------------------------------------------------------------
// CoLT vs partial-subblock TLBs (§2.3's prior approach).
// ---------------------------------------------------------------------

// SubblockRow compares the alignment-restricted partial-subblock TLB
// against CoLT-SA at identical geometry.
type SubblockRow struct {
	Bench string
	// Elimination of baseline L2 misses.
	SubblockElim, SAElim float64
	// RejectedPct is the share of subblock fills that could not share
	// an entry because the frame was misaligned.
	RejectedPct float64
}

// SubblockComparison runs baseline, partial-subblock, and CoLT-SA.
func SubblockComparison(opts Options) ([]SubblockRow, error) {
	variants := []Variant{
		{Name: "baseline", Config: core.BaselineConfig()},
		{Name: "partial-subblock", Config: core.PartialSubblockConfig()},
		{Name: "colt-sa", Config: core.CoLTSAConfig(core.DefaultCoLTShift)},
	}
	rows, ok, err := mapJobs(opts, workload.All(),
		func(spec workload.Spec) jobMeta {
			return jobMeta{kind: "subblock", bench: spec.Name, setup: SetupTHSOnNormal.Name}
		},
		func(spec workload.Spec, opts Options) (SubblockRow, error) {
			res, err := RunBenchmark(spec, SetupTHSOnNormal, opts, variants)
			if err != nil {
				return SubblockRow{}, fmt.Errorf("subblock comparison %s: %w", spec.Name, err)
			}
			base, _ := res.Variant("baseline")
			sb, _ := res.Variant("partial-subblock")
			sa, _ := res.Variant("colt-sa")
			return SubblockRow{
				Bench:        spec.Name,
				SubblockElim: stats.PercentEliminated(float64(base.TLB.L2Misses), float64(sb.TLB.L2Misses)),
				SAElim:       stats.PercentEliminated(float64(base.TLB.L2Misses), float64(sa.TLB.L2Misses)),
				RejectedPct:  sb.SubblockRejectedPct,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return surviving(rows, ok), nil
}

// RenderSubblockComparison formats the comparison as text.
func RenderSubblockComparison(rows []SubblockRow) string {
	t := stats.NewTable("Benchmark", "Subblock L2 elim", "CoLT-SA L2 elim", "Align-rejected %")
	var sb, sa, rj stats.Summary
	for _, r := range rows {
		t.AddRow(r.Bench, r.SubblockElim, r.SAElim, r.RejectedPct)
		sb.Add(r.SubblockElim)
		sa.Add(r.SAElim)
		rj.Add(r.RejectedPct)
	}
	t.AddRow("Average", sb.Mean(), sa.Mean(), rj.Mean())
	return "Extension: CoLT-SA vs partial-subblock TLBs (Talluri & Hill; §2.3)\n" +
		"(elim = % of baseline L2 misses; align-rejected = subblock fills blocked by physical misalignment)\n" +
		t.String()
}

// ---------------------------------------------------------------------
// Future-work refinements ablation (§4.1.5/§4.2.3).
// ---------------------------------------------------------------------

// RefinementVariants returns CoLT-All plus each refinement toggled.
func RefinementVariants() []Variant {
	graceful := core.CoLTAllConfig()
	graceful.Refinements.GracefulInvalidation = true
	biased := core.CoLTAllConfig()
	biased.Refinements.CoalescingAwareLRU = true
	both := core.CoLTAllConfig()
	both.Refinements.GracefulInvalidation = true
	both.Refinements.CoalescingAwareLRU = true
	return []Variant{
		{Name: "baseline", Config: core.BaselineConfig()},
		{Name: "colt-all", Config: core.CoLTAllConfig()},
		{Name: "all+graceful", Config: graceful},
		{Name: "all+biaslru", Config: biased},
		{Name: "all+both", Config: both},
	}
}

// RefinementsAblation evaluates the paper's future-work options.
func RefinementsAblation(opts Options) (*Evaluation, error) {
	return RunEvaluation(opts, RefinementVariants())
}

// ---------------------------------------------------------------------
// Sensitivity sweeps.
// ---------------------------------------------------------------------

// SupSizeRow sweeps the coalesced superpage TLB's capacity for CoLT-FA
// (the paper fixes 8 entries to pay for range comparators; this
// quantifies what that conservatism costs).
type SupSizeRow struct {
	Bench string
	// Elim maps superpage-TLB entry count to % of baseline L2 misses
	// eliminated by CoLT-FA at that size.
	Elim map[int]float64
}

// SupSizes swept by SupSizeSensitivity.
var SupSizes = []int{4, 8, 16, 32}

// SupSizeSensitivity runs CoLT-FA at several superpage-TLB sizes.
func SupSizeSensitivity(opts Options) ([]SupSizeRow, error) {
	variants := []Variant{{Name: "baseline", Config: core.BaselineConfig()}}
	for _, n := range SupSizes {
		cfg := core.CoLTFAConfig()
		cfg.SupEntries = n
		variants = append(variants, Variant{Name: fmt.Sprintf("fa-%d", n), Config: cfg})
	}
	rows, ok, err := mapJobs(opts, workload.All(),
		func(spec workload.Spec) jobMeta {
			return jobMeta{kind: "sup-size", bench: spec.Name, setup: SetupTHSOnNormal.Name}
		},
		func(spec workload.Spec, opts Options) (SupSizeRow, error) {
			res, err := RunBenchmark(spec, SetupTHSOnNormal, opts, variants)
			if err != nil {
				return SupSizeRow{}, fmt.Errorf("sup-size sweep %s: %w", spec.Name, err)
			}
			base, _ := res.Variant("baseline")
			row := SupSizeRow{Bench: spec.Name, Elim: map[int]float64{}}
			for _, n := range SupSizes {
				v, _ := res.Variant(fmt.Sprintf("fa-%d", n))
				row.Elim[n] = stats.PercentEliminated(float64(base.TLB.L2Misses), float64(v.TLB.L2Misses))
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	return surviving(rows, ok), nil
}

// RenderSupSizeSensitivity formats the sweep as text.
func RenderSupSizeSensitivity(rows []SupSizeRow) string {
	header := []string{"Benchmark"}
	for _, n := range SupSizes {
		header = append(header, fmt.Sprintf("FA %d-entry", n))
	}
	t := stats.NewTable(header...)
	sums := map[int]*stats.Summary{}
	for _, r := range rows {
		cells := []any{r.Bench}
		for _, n := range SupSizes {
			cells = append(cells, r.Elim[n])
			if sums[n] == nil {
				sums[n] = &stats.Summary{}
			}
			sums[n].Add(r.Elim[n])
		}
		t.AddRow(cells...)
	}
	avg := []any{"Average"}
	for _, n := range SupSizes {
		avg = append(avg, sums[n].Mean())
	}
	t.AddRow(avg...)
	return "Extension: CoLT-FA superpage-TLB size sensitivity (% of baseline L2 misses eliminated)\n" + t.String()
}

// L2SizeRow sweeps the L2 TLB's capacity for the baseline and CoLT-SA:
// how much conventional capacity does coalescing substitute for?
type L2SizeRow struct {
	Bench string
	// MissesPerM maps "<entries>/<variant>" to L2 MPMI.
	BaseMPMI map[int]float64
	SAMPMI   map[int]float64
}

// L2Sizes swept by L2SizeSensitivity (entries; 4-way throughout).
var L2Sizes = []int{64, 128, 256, 512}

// L2SizeSensitivity runs baseline and CoLT-SA across L2 TLB sizes.
func L2SizeSensitivity(opts Options) ([]L2SizeRow, error) {
	var variants []Variant
	for _, n := range L2Sizes {
		base := core.BaselineConfig()
		base.L2Sets = n / base.L2Ways
		sa := core.CoLTSAConfig(core.DefaultCoLTShift)
		sa.L2Sets = n / sa.L2Ways
		variants = append(variants,
			Variant{Name: fmt.Sprintf("base-%d", n), Config: base},
			Variant{Name: fmt.Sprintf("sa-%d", n), Config: sa})
	}
	rows, ok, err := mapJobs(opts, workload.All(),
		func(spec workload.Spec) jobMeta {
			return jobMeta{kind: "l2-size", bench: spec.Name, setup: SetupTHSOnNormal.Name}
		},
		func(spec workload.Spec, opts Options) (L2SizeRow, error) {
			res, err := RunBenchmark(spec, SetupTHSOnNormal, opts, variants)
			if err != nil {
				return L2SizeRow{}, fmt.Errorf("l2-size sweep %s: %w", spec.Name, err)
			}
			row := L2SizeRow{Bench: spec.Name, BaseMPMI: map[int]float64{}, SAMPMI: map[int]float64{}}
			for _, n := range L2Sizes {
				if v, ok := res.Variant(fmt.Sprintf("base-%d", n)); ok {
					_, row.BaseMPMI[n] = v.MPMI()
				}
				if v, ok := res.Variant(fmt.Sprintf("sa-%d", n)); ok {
					_, row.SAMPMI[n] = v.MPMI()
				}
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	return surviving(rows, ok), nil
}

// RenderL2SizeSensitivity formats the sweep as text.
func RenderL2SizeSensitivity(rows []L2SizeRow) string {
	header := []string{"Benchmark"}
	for _, n := range L2Sizes {
		header = append(header, fmt.Sprintf("base-%d", n), fmt.Sprintf("sa-%d", n))
	}
	t := stats.NewTable(header...)
	for _, r := range rows {
		cells := []any{r.Bench}
		for _, n := range L2Sizes {
			cells = append(cells, r.BaseMPMI[n], r.SAMPMI[n])
		}
		t.AddRow(cells...)
	}
	return "Extension: L2 TLB size sensitivity (L2 misses per million instructions)\n" + t.String()
}
