package experiments

import (
	"fmt"
	"time"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/core"
	"colt/internal/fault"
	"colt/internal/mm"
	"colt/internal/mmu"
	"colt/internal/pagetable"
	"colt/internal/perf"
	"colt/internal/rng"
	"colt/internal/stats"
	"colt/internal/vm"
	"colt/internal/workload"
)

// The virtualization extension: the paper motivates CoLT partly through
// virtualized systems, where TLB misses cost two-dimensional page walks
// and degrade performance by up to 50% (§1), and concludes that "CoLT
// will become even more critical as ... virtualization become[s]
// prevalent" (§8). This experiment quantifies that: the same benchmark
// and TLB designs run behind a nested walker, where the guest OS
// allocates guest-physical memory (first contiguity dimension) and the
// host backs guest-physical frames from its own fragmented allocator
// (second dimension). CoLT coalesces only pages contiguous in BOTH
// dimensions, and every eliminated miss saves an up-to-24-access walk.

// VirtRow is one benchmark's native-vs-virtualized comparison.
type VirtRow struct {
	Bench string
	// L2 elimination by CoLT-All, native and virtualized.
	NativeElim, VirtElim float64
	// Modeled speedups of CoLT-All over the baseline.
	NativeSpeedup, VirtSpeedup float64
	// Walk-cycle inflation of the virtualized baseline over native.
	WalkInflation float64
}

// hostFrameSource allocates host page-table frames from the host
// system's buddy allocator.
type hostFrameSource struct{ sys *vm.System }

func (h *hostFrameSource) AllocFrame() (arch.PFN, error) {
	pfn, err := h.sys.Buddy.AllocBlock(0)
	if err != nil {
		return 0, err
	}
	h.sys.Phys.SetOwner(pfn, mm.PageOwner{PID: mm.KernelPID}, false)
	return pfn, nil
}

func (h *hostFrameSource) FreeFrame(pfn arch.PFN) { h.sys.Buddy.FreeRange(pfn, 1) }

// buildHostBacking creates the host (nested) page table backing every
// guest-physical frame, allocating host frames from a churned host
// system so the second dimension has realistic contiguity.
func buildHostBacking(guestFrames int, opts Options, bench string) (*pagetable.Table, error) {
	hostOpts := opts
	// The host needs room for its own churn residual (~26%), every
	// guest-physical frame, and the nested page tables.
	hostSys := vm.NewSystem(vm.Config{
		Frames:     guestFrames + guestFrames/2 + 8192,
		THP:        false,
		Compaction: mm.CompactionNormal,
	})
	master := rng.New(seedFor(hostOpts.Seed, bench, "host"))
	if _, err := vm.BackgroundChurn(hostSys, hostOpts.ChurnOps, master); err != nil {
		return nil, fmt.Errorf("host churn: %w", err)
	}
	hostSys.Compactor.Compact(-1)
	host, err := pagetable.New(&hostFrameSource{sys: hostSys})
	if err != nil {
		return nil, err
	}
	attr := vm.AnonAttr
	for gpfn := 0; gpfn < guestFrames; gpfn++ {
		hpfn, err := hostSys.Buddy.AllocBlock(0)
		if err != nil {
			return nil, fmt.Errorf("host backing frame %d: %w", gpfn, err)
		}
		hostSys.Phys.SetOwner(hpfn, mm.PageOwner{PID: 1, VPN: arch.VPN(gpfn)}, true)
		if err := host.Map(arch.VPN(gpfn), arch.PTE{PFN: hpfn, Attr: attr}); err != nil {
			return nil, err
		}
	}
	return host, nil
}

// VirtualizationComparison runs each benchmark natively and behind the
// nested walker, with the baseline and CoLT-All hierarchies on the
// identical reference stream.
func VirtualizationComparison(opts Options) ([]VirtRow, error) {
	model := perf.Default()
	// Each benchmark's native + virtualized pair is one scheduler job:
	// the two runs feed one comparison row.
	rows, ok, err := mapJobs(opts, workload.All(),
		func(spec workload.Spec) jobMeta {
			return jobMeta{kind: "virtualization", bench: spec.Name, setup: SetupTHSOnNormal.Name}
		},
		func(spec workload.Spec, opts Options) (VirtRow, error) {
			// Native run reuses the standard pipeline.
			native, err := RunBenchmark(spec, SetupTHSOnNormal, opts, []Variant{
				{Name: "baseline", Config: core.BaselineConfig()},
				{Name: "colt-all", Config: core.CoLTAllConfig()},
			})
			if err != nil {
				return VirtRow{}, fmt.Errorf("native %s: %w", spec.Name, err)
			}

			virt, err := runVirtualized(spec, opts)
			if err != nil {
				return VirtRow{}, fmt.Errorf("virtualized %s: %w", spec.Name, err)
			}

			nb, _ := native.Variant("baseline")
			na, _ := native.Variant("colt-all")
			vb, va := virt[0], virt[1]
			row := VirtRow{
				Bench:         spec.Name,
				NativeElim:    stats.PercentEliminated(float64(nb.TLB.L2Misses), float64(na.TLB.L2Misses)),
				VirtElim:      stats.PercentEliminated(float64(vb.TLB.L2Misses), float64(va.TLB.L2Misses)),
				NativeSpeedup: model.Improvement(nb.Run, na.Run),
				VirtSpeedup:   model.Improvement(vb.Run, va.Run),
			}
			// Every divisor must be checked: a run short enough to trigger
			// no virtualized walks would otherwise put Inf in the row (and
			// then in the metrics JSON, which rejects non-finite values).
			if nb.TLB.Walks > 0 && vb.TLB.Walks > 0 && nb.Run.WalkCycles > 0 {
				nativePerWalk := float64(nb.Run.WalkCycles) / float64(nb.TLB.Walks)
				virtPerWalk := float64(vb.Run.WalkCycles) / float64(vb.TLB.Walks)
				row.WalkInflation = virtPerWalk / nativePerWalk
			}
			return row, nil
		})
	if err != nil {
		return nil, err
	}
	return surviving(rows, ok), nil
}

// runVirtualized builds the guest system + workload, backs it with a
// host table, and runs baseline and CoLT-All over the nested walker.
func runVirtualized(spec workload.Spec, opts Options) ([2]VariantResult, error) {
	start := time.Now()
	var out [2]VariantResult
	sys, master, plane, err := buildSystem(SetupTHSOnNormal, opts, spec.Name+"/virt", nil)
	if err != nil {
		return out, err
	}
	proc, err := sys.NewProcess()
	if err != nil {
		return out, err
	}
	w, err := workload.Build(scaledSpec(spec, opts), proc, master.Stream("workload"))
	if err != nil {
		return out, err
	}
	host, err := buildHostBacking(sys.Phys.NumFrames(), opts, spec.Name)
	if err != nil {
		return out, err
	}

	configs := []core.Config{core.BaselineConfig(), core.CoLTAllConfig()}
	names := []string{"baseline", "colt-all"}
	type simState struct {
		hier   *core.Hierarchy
		caches *cache.Hierarchy
		stall  uint64
	}
	sims := make([]simState, len(configs))
	for i, cfg := range configs {
		caches := cache.DefaultHierarchy()
		walker := mmu.NewNestedWalker(proc.Table, host, caches,
			mmu.NewWalkCache(mmu.DefaultWalkCacheEntries),
			mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
		sims[i] = simState{hier: core.NewHierarchy(cfg, walker), caches: caches}
	}

	var instructions uint64
	refs := opts.Warmup + opts.Refs
	for i := 0; i < refs; i++ {
		if err := plane.Fail(fault.SiteTraceCorrupt); err != nil {
			return out, fmt.Errorf("%s/virt: decoding trace record %d: %w", spec.Name, i, err)
		}
		va, write, gap := w.Next()
		vpn := va.Page()
		if i == opts.Warmup {
			instructions = 0
			for j := range sims {
				sims[j].hier.ResetStats()
				sims[j].stall = 0
			}
		}
		instructions += uint64(gap)
		for j := range sims {
			res := sims[j].hier.Access(vpn)
			if res.Fault {
				return out, fmt.Errorf("virtualized fault at vpn %d", vpn)
			}
			lat := sims[j].caches.DataAccess(res.PFN.Addr()+arch.PAddr(va.Offset()), write)
			if lat > l1HitLatency {
				sims[j].stall += uint64(lat - l1HitLatency)
			}
		}
	}
	// System-level audits only: the nested walker's TLB entries hold
	// host PFNs, which by design never match the guest page table, so
	// the coherence/coalescing auditors would flag every entry.
	if err := auditSystem(opts, "at virtualized run end", sys); err != nil {
		return out, err
	}
	for j := range sims {
		st := sims[j].hier.Stats()
		out[j] = VariantResult{
			Name:   names[j],
			Policy: configs[j].Policy.String(),
			TLB:    st,
			Levels: sims[j].hier.LevelStats(),
			Run: perf.Run{
				Instructions:   instructions,
				MemStallCycles: sims[j].stall,
				WalkCycles:     st.WalkCycles,
			},
		}
	}
	if opts.Metrics != nil {
		res := &BenchResult{
			Bench:        spec.Name + "/virt",
			Setup:        SetupTHSOnNormal,
			Instructions: instructions,
			Variants:     out[:],
		}
		seed := seedFor(opts.Seed, spec.Name+"/virt", SetupTHSOnNormal.Name)
		opts.Metrics.Add(res.MetricsRecord(seed), time.Since(start))
	}
	return out, nil
}

// RenderVirtualization formats the comparison as text.
func RenderVirtualization(rows []VirtRow) string {
	t := stats.NewTable("Benchmark", "Native elim", "Virt elim", "Native speedup", "Virt speedup", "Walk inflation")
	var ne, ve, ns, vs, wi stats.Summary
	for _, r := range rows {
		t.AddRow(r.Bench, r.NativeElim, r.VirtElim, r.NativeSpeedup, r.VirtSpeedup, r.WalkInflation)
		ne.Add(r.NativeElim)
		ve.Add(r.VirtElim)
		ns.Add(r.NativeSpeedup)
		vs.Add(r.VirtSpeedup)
		wi.Add(r.WalkInflation)
	}
	t.AddRow("Average", ne.Mean(), ve.Mean(), ns.Mean(), vs.Mean(), wi.Mean())
	return "Extension: CoLT-All under virtualization (2D nested page walks)\n" +
		"(elim = % of baseline L2 misses; speedup = modeled %; walk inflation = virt/native cycles per walk)\n" +
		t.String()
}
