package experiments

import (
	"strings"
	"testing"

	"colt/internal/workload"
)

// quickest shrinks even below QuickOptions for driver shape tests.
func quickest() Options {
	o := QuickOptions()
	o.Refs = 8_000
	o.Warmup = 1_000
	return o
}

func TestTable1Shape(t *testing.T) {
	rows, err := Table1(quickest())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 || rows[0].Bench != "Mcf" {
		t.Fatalf("rows = %d, first = %s", len(rows), rows[0].Bench)
	}
	for _, r := range rows {
		// THS-on can legitimately reach zero misses at quick scale
		// (tiny footprints fully superpage-covered); THS-off cannot.
		if r.OffL1MPMI <= 0 {
			t.Fatalf("%s: degenerate THS-off MPMI %+v", r.Bench, r)
		}
		if r.OnL2MPMI > r.OnL1MPMI+1e-9 || r.OffL2MPMI > r.OffL1MPMI+1e-9 {
			t.Fatalf("%s: L2 MPMI exceeds L1 MPMI", r.Bench)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "Mcf") || !strings.Contains(out, "Milc") {
		t.Fatal("render missing benchmarks")
	}
}

func TestContiguityCDFShape(t *testing.T) {
	rows, err := ContiguityCDFs(SetupTHSOffNormal, quickest())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Average < 1 || r.RunAverage < 1 {
			t.Fatalf("%s: averages %v/%v", r.Bench, r.Average, r.RunAverage)
		}
		if len(r.Points) != 6 {
			t.Fatalf("%s: %d CDF points", r.Bench, len(r.Points))
		}
		prev := 0.0
		for _, p := range r.Points {
			if p.CumFrac < prev {
				t.Fatalf("%s: CDF not monotone", r.Bench)
			}
			prev = p.CumFrac
		}
		if r.Points[5].CumFrac != 1 {
			t.Fatalf("%s: CDF does not reach 1 at 1024", r.Bench)
		}
	}
	out := RenderContiguity(SetupTHSOffNormal, rows)
	if !strings.Contains(out, "Average") {
		t.Fatal("render missing average row")
	}
}

func TestEvaluationDerivations(t *testing.T) {
	// Two benchmarks' worth of a standard evaluation via RunBenchmark,
	// assembled manually to avoid the full 14-benchmark cost.
	ev := &Evaluation{Baseline: "baseline"}
	for _, name := range []string{"Mcf", "Gobmk"} {
		spec, _ := workload.ByName(name)
		res, err := RunBenchmark(spec, SetupTHSOnNormal, quickest(), StandardVariants())
		if err != nil {
			t.Fatal(err)
		}
		ev.Results = append(ev.Results, res)
	}
	elims := ev.Eliminations()
	if len(elims) != 2 {
		t.Fatalf("eliminations rows = %d", len(elims))
	}
	for _, row := range elims {
		for _, name := range []string{"colt-sa", "colt-fa", "colt-all"} {
			if _, ok := row.L1[name]; !ok {
				t.Fatalf("%s: missing variant %s", row.Bench, name)
			}
			if row.L1[name] > 100 || row.L2[name] > 100 {
				t.Fatalf("%s/%s: elimination above 100%%", row.Bench, name)
			}
		}
	}
	perf := ev.Performance()
	if len(perf) != 2 {
		t.Fatalf("performance rows = %d", len(perf))
	}
	for _, row := range perf {
		if row.Perfect <= 0 {
			t.Fatalf("%s: perfect speedup %v", row.Bench, row.Perfect)
		}
		for name, gain := range row.Gains {
			if gain > row.Perfect+1e-9 {
				t.Fatalf("%s/%s: gain %v exceeds perfect %v", row.Bench, name, gain, row.Perfect)
			}
		}
	}
	text := RenderEliminations("t", []string{"colt-sa", "colt-fa", "colt-all"}, elims)
	if !strings.Contains(text, "Average") {
		t.Fatal("eliminations render missing average")
	}
	text = RenderPerformance([]string{"colt-sa", "colt-fa", "colt-all"}, perf)
	if !strings.Contains(text, "Perfect") {
		t.Fatal("performance render missing perfect column")
	}
}

func TestMemhogSweepRow(t *testing.T) {
	opts := quickest()
	spec, _ := workload.ByName("Gobmk")
	for _, pct := range []int{0, 25, 50} {
		setup := SetupTHSOnNormal
		setup.MemhogPct = pct
		res, err := RunContiguity(spec, setup, opts)
		if err != nil {
			t.Fatalf("pct %d: %v", pct, err)
		}
		if res.NonSuperPages == 0 {
			t.Fatalf("pct %d: empty scan", pct)
		}
	}
	out := RenderMemhog("title", []MemhogRow{{Bench: "x", NoMemhog: 1, Memhog25: 2, Memhog50: 3}})
	if !strings.Contains(out, "Memhog(25)") {
		t.Fatal("memhog render malformed")
	}
}

func TestFigure20Quick(t *testing.T) {
	// Exercise the associativity variants on one benchmark by hand.
	spec, _ := workload.ByName("Bzip2")
	base8 := StandardVariants()[0]
	res, err := RunBenchmark(spec, SetupTHSOnNormal, quickest(), []Variant{base8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Variants[0].TLB.Accesses == 0 {
		t.Fatal("no accesses")
	}
	out := RenderFigure20([]AssocRow{{Bench: "x", SA4: 40, NoCoLT8: 10, SA8: 60}})
	if !strings.Contains(out, "8-way CoLT-SA") {
		t.Fatal("figure 20 render malformed")
	}
}
