package experiments

import (
	"fmt"
	"strings"

	"colt/internal/contig"
	"colt/internal/core"
	"colt/internal/perf"
	"colt/internal/stats"
	"colt/internal/workload"
)

// ---------------------------------------------------------------------
// Table 1: real-system L1/L2 TLB MPMI with THS on and off.
// ---------------------------------------------------------------------

// Table1Row is one benchmark's miss rates on the characterization
// platform (64-entry L1 / 512-entry L2 TLBs).
type Table1Row struct {
	Bench, Suite                             string
	OnL1MPMI, OnL2MPMI, OffL1MPMI, OffL2MPMI float64
}

// Table1 regenerates the paper's Table 1. Each (benchmark × THS
// setting) pair is an independent scheduler job; a benchmark whose
// jobs fail under fault injection drops out of the table (both halves
// of its row are needed), the rest still render.
func Table1(opts Options) ([]Table1Row, error) {
	variant := []Variant{{Name: "real-system", Config: core.RealSystemBaselineConfig()}}
	type job struct {
		spec  workload.Spec
		setup SystemSetup
	}
	var jobs []job
	for _, spec := range workload.All() {
		jobs = append(jobs,
			job{spec, SetupTHSOnNormal},
			job{spec, SetupTHSOffNormal})
	}
	mpmis, ok, err := mapJobs(opts, jobs,
		func(j job) jobMeta { return jobMeta{kind: "table1", bench: j.spec.Name, setup: j.setup.Name} },
		func(j job, opts Options) ([2]float64, error) {
			res, err := RunBenchmark(j.spec, j.setup, opts, variant)
			if err != nil {
				return [2]float64{}, fmt.Errorf("table1 %s: %w", j.spec.Name, err)
			}
			l1, l2 := res.Variants[0].MPMI()
			return [2]float64{l1, l2}, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []Table1Row
	for i, spec := range workload.All() {
		if !ok[2*i] || !ok[2*i+1] {
			continue
		}
		rows = append(rows, Table1Row{
			Bench: spec.Name, Suite: spec.Suite,
			OnL1MPMI: mpmis[2*i][0], OnL2MPMI: mpmis[2*i][1],
			OffL1MPMI: mpmis[2*i+1][0], OffL2MPMI: mpmis[2*i+1][1],
		})
	}
	return rows, nil
}

// RenderTable1 formats Table 1 as text.
func RenderTable1(rows []Table1Row) string {
	t := stats.NewTable("Benchmark", "Suite", "THS-on L1/L2 MPMI", "THS-off L1/L2 MPMI")
	for _, r := range rows {
		t.AddRow(r.Bench, r.Suite,
			fmt.Sprintf("%.0f/%.0f", r.OnL1MPMI, r.OnL2MPMI),
			fmt.Sprintf("%.0f/%.0f", r.OffL1MPMI, r.OffL2MPMI))
	}
	return t.String()
}

// ---------------------------------------------------------------------
// Figures 7-15: contiguity CDFs per kernel configuration.
// ---------------------------------------------------------------------

// ContiguityRow is one benchmark's contiguity distribution.
type ContiguityRow struct {
	Bench       string
	Average     float64       // page-weighted
	RunAverage  float64       // run-weighted (the paper's legend metric)
	Points      []stats.Point // CDF sampled at contig.PaperXAxis
	FracOver512 float64
	SuperPages  int
}

// ContiguityCDFs regenerates one CDF figure group: Figures 7-9 for
// SetupTHSOnNormal, 10-12 for SetupTHSOffNormal, 13-15 for
// SetupTHSOffLow.
func ContiguityCDFs(setup SystemSetup, opts Options) ([]ContiguityRow, error) {
	rows, ok, err := mapJobs(opts, workload.All(),
		func(spec workload.Spec) jobMeta {
			return jobMeta{kind: "contiguity", bench: spec.Name, setup: setup.Name}
		},
		func(spec workload.Spec, opts Options) (ContiguityRow, error) {
			res, err := RunContiguity(spec, setup, opts)
			if err != nil {
				return ContiguityRow{}, fmt.Errorf("contiguity %s under %s: %w", spec.Name, setup.Name, err)
			}
			return ContiguityRow{
				Bench:       spec.Name,
				Average:     res.AverageContiguity(),
				RunAverage:  res.RunWeightedAverage(),
				Points:      res.CDF.SampleAt(contig.PaperXAxis),
				FracOver512: res.FractionAtLeast(513),
				SuperPages:  res.SuperPages,
			}, nil
		})
	if err != nil {
		return nil, err
	}
	return surviving(rows, ok), nil
}

// RenderContiguity formats a CDF figure group as text.
func RenderContiguity(setup SystemSetup, rows []ContiguityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Contiguity CDFs — %s\n", setup.Name)
	t := stats.NewTable("Benchmark", "PageAvg", "RunAvg", "P(<=1)", "P(<=4)", "P(<=16)", "P(<=64)", "P(<=256)", "P(<=1024)", ">512 frac")
	var avg, ravg stats.Summary
	for _, r := range rows {
		cells := []any{r.Bench, r.Average, r.RunAverage}
		for _, p := range r.Points {
			cells = append(cells, p.CumFrac)
		}
		cells = append(cells, r.FracOver512)
		t.AddRow(cells...)
		avg.Add(r.Average)
		ravg.Add(r.RunAverage)
	}
	t.AddRow("Average", avg.Mean(), ravg.Mean(), "", "", "", "", "", "", "")
	b.WriteString(t.String())
	return b.String()
}

// ---------------------------------------------------------------------
// Figures 16-17: average contiguity vs memhog load.
// ---------------------------------------------------------------------

// MemhogRow is one benchmark's average contiguity under increasing
// synthetic load.
type MemhogRow struct {
	Bench                        string
	NoMemhog, Memhog25, Memhog50 float64
}

// Figure16 (THS on) and Figure17 (THS off) regenerate the memhog sweeps.
func Figure16(opts Options) ([]MemhogRow, error) { return memhogSweep(opts, true) }

// Figure17 is the THS-off variant of the sweep.
func Figure17(opts Options) ([]MemhogRow, error) { return memhogSweep(opts, false) }

func memhogSweep(opts Options, ths bool) ([]MemhogRow, error) {
	pcts := []int{0, 25, 50}
	type job struct {
		spec  workload.Spec
		setup SystemSetup
	}
	var jobs []job
	for _, spec := range workload.All() {
		for _, pct := range pcts {
			setup := SetupTHSOnNormal
			if !ths {
				setup = SetupTHSOffNormal
			}
			setup.MemhogPct = pct
			setup.Name = fmt.Sprintf("%s, memhog(%d)", setup.Name, pct)
			jobs = append(jobs, job{spec, setup})
		}
	}
	avgs, ok, err := mapJobs(opts, jobs,
		func(j job) jobMeta { return jobMeta{kind: "memhog-sweep", bench: j.spec.Name, setup: j.setup.Name} },
		func(j job, opts Options) (float64, error) {
			res, err := RunContiguity(j.spec, j.setup, opts)
			if err != nil {
				return 0, fmt.Errorf("memhog sweep %s pct %d: %w", j.spec.Name, j.setup.MemhogPct, err)
			}
			return res.AverageContiguity(), nil
		})
	if err != nil {
		return nil, err
	}
	var rows []MemhogRow
	for i, spec := range workload.All() {
		// A sweep row compares the three loads; it needs all of them.
		if !ok[i*len(pcts)] || !ok[i*len(pcts)+1] || !ok[i*len(pcts)+2] {
			continue
		}
		rows = append(rows, MemhogRow{
			Bench:    spec.Name,
			NoMemhog: avgs[i*len(pcts)],
			Memhog25: avgs[i*len(pcts)+1],
			Memhog50: avgs[i*len(pcts)+2],
		})
	}
	return rows, nil
}

// RenderMemhog formats Figure 16 or 17 as text.
func RenderMemhog(title string, rows []MemhogRow) string {
	t := stats.NewTable("Benchmark", "No Memhog", "Memhog(25)", "Memhog(50)")
	var a0, a25, a50 stats.Summary
	for _, r := range rows {
		t.AddRow(r.Bench, r.NoMemhog, r.Memhog25, r.Memhog50)
		a0.Add(r.NoMemhog)
		a25.Add(r.Memhog25)
		a50.Add(r.Memhog50)
	}
	t.AddRow("Average", a0.Mean(), a25.Mean(), a50.Mean())
	return title + "\n" + t.String()
}

// ---------------------------------------------------------------------
// Figures 18/21 share one evaluation run over the standard variants.
// ---------------------------------------------------------------------

// Evaluation holds the per-benchmark results of one variant set run
// under the paper's default kernel configuration.
type Evaluation struct {
	Results  []*BenchResult
	Baseline string // name of the baseline variant
}

// RunEvaluation runs every benchmark under the default kernel setup
// with the given TLB variants (the first is treated as the baseline).
// Benchmarks fan out across the scheduler; the variants of one
// benchmark share its goroutine because they consume one reference
// stream in lockstep. Under fault injection, benchmarks whose jobs
// fail terminally are dropped and the evaluation covers the survivors.
func RunEvaluation(opts Options, variants []Variant) (*Evaluation, error) {
	results, ok, err := mapJobs(opts, workload.All(),
		func(spec workload.Spec) jobMeta {
			return jobMeta{kind: "evaluation", bench: spec.Name, setup: SetupTHSOnNormal.Name}
		},
		func(spec workload.Spec, opts Options) (*BenchResult, error) {
			res, err := RunBenchmark(spec, SetupTHSOnNormal, opts, variants)
			if err != nil {
				return nil, fmt.Errorf("evaluation %s: %w", spec.Name, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	return &Evaluation{Results: surviving(results, ok), Baseline: variants[0].Name}, nil
}

// RunStandardEvaluation runs baseline + CoLT-SA/FA/All (Figures 18 and
// 21 derive from the same run).
func RunStandardEvaluation(opts Options) (*Evaluation, error) {
	return RunEvaluation(opts, StandardVariants())
}

// EliminationRow reports, per benchmark, the percentage of baseline L1
// and L2 TLB misses each variant eliminates.
type EliminationRow struct {
	Bench string
	L1    map[string]float64
	L2    map[string]float64
}

// Eliminations computes Figure 18 (or 19, depending on the variant set)
// from the evaluation.
func (e *Evaluation) Eliminations() []EliminationRow {
	var rows []EliminationRow
	for _, res := range e.Results {
		base, ok := res.Variant(e.Baseline)
		if !ok {
			continue
		}
		row := EliminationRow{Bench: res.Bench, L1: map[string]float64{}, L2: map[string]float64{}}
		for _, v := range res.Variants {
			if v.Name == e.Baseline {
				continue
			}
			row.L1[v.Name] = stats.PercentEliminated(float64(base.TLB.L1Misses), float64(v.TLB.L1Misses))
			row.L2[v.Name] = stats.PercentEliminated(float64(base.TLB.L2Misses), float64(v.TLB.L2Misses))
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderEliminations formats an elimination figure as text.
func RenderEliminations(title string, variantNames []string, rows []EliminationRow) string {
	header := []string{"Benchmark"}
	for _, n := range variantNames {
		header = append(header, "L1 "+n, "L2 "+n)
	}
	t := stats.NewTable(header...)
	sums := make(map[string]*stats.Summary)
	for _, r := range rows {
		cells := []any{r.Bench}
		for _, n := range variantNames {
			cells = append(cells, r.L1[n], r.L2[n])
			for lvl, v := range map[string]float64{"L1 " + n: r.L1[n], "L2 " + n: r.L2[n]} {
				if sums[lvl] == nil {
					sums[lvl] = &stats.Summary{}
				}
				sums[lvl].Add(v)
			}
		}
		t.AddRow(cells...)
	}
	avg := []any{"Average"}
	for _, n := range variantNames {
		avg = append(avg, sums["L1 "+n].Mean(), sums["L2 "+n].Mean())
	}
	t.AddRow(avg...)
	return title + "\n" + t.String()
}

// PerfRow is one benchmark's Figure-21 bar group: speedup (%) from a
// perfect TLB and from each CoLT variant.
type PerfRow struct {
	Bench   string
	Perfect float64
	Gains   map[string]float64
}

// Performance computes Figure 21 from the evaluation using the default
// cycle model.
func (e *Evaluation) Performance() []PerfRow {
	model := perf.Default()
	var rows []PerfRow
	for _, res := range e.Results {
		base, ok := res.Variant(e.Baseline)
		if !ok {
			continue
		}
		row := PerfRow{Bench: res.Bench, Gains: map[string]float64{}}
		row.Perfect = model.PerfectImprovement(base.Run)
		for _, v := range res.Variants {
			if v.Name == e.Baseline {
				continue
			}
			row.Gains[v.Name] = model.Improvement(base.Run, v.Run)
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderPerformance formats Figure 21 as text.
func RenderPerformance(variantNames []string, rows []PerfRow) string {
	header := []string{"Benchmark", "Perfect"}
	header = append(header, variantNames...)
	t := stats.NewTable(header...)
	var perfSum stats.Summary
	sums := make(map[string]*stats.Summary)
	for _, r := range rows {
		cells := []any{r.Bench, r.Perfect}
		perfSum.Add(r.Perfect)
		for _, n := range variantNames {
			cells = append(cells, r.Gains[n])
			if sums[n] == nil {
				sums[n] = &stats.Summary{}
			}
			sums[n].Add(r.Gains[n])
		}
		t.AddRow(cells...)
	}
	avg := []any{"Average", perfSum.Mean()}
	for _, n := range variantNames {
		avg = append(avg, sums[n].Mean())
	}
	t.AddRow(avg...)
	return "Figure 21: performance improvement (%) over baseline\n" + t.String()
}

// ---------------------------------------------------------------------
// Figure 19: CoLT-SA index left-shift sweep.
// ---------------------------------------------------------------------

// ShiftVariants returns baseline plus CoLT-SA at shifts 1, 2, 3.
func ShiftVariants() []Variant {
	return []Variant{
		{Name: "baseline", Config: core.BaselineConfig()},
		{Name: "shift-1", Config: core.CoLTSAConfig(1)},
		{Name: "shift-2", Config: core.CoLTSAConfig(2)},
		{Name: "shift-3", Config: core.CoLTSAConfig(3)},
	}
}

// Figure19 runs the shift sweep and returns elimination rows.
func Figure19(opts Options) (*Evaluation, error) {
	return RunEvaluation(opts, ShiftVariants())
}

// ---------------------------------------------------------------------
// Figure 20: associativity study on the L2 TLB.
// ---------------------------------------------------------------------

// AssocRow reports the percentage of the 4-way no-CoLT L2 misses
// eliminated by each alternative.
type AssocRow struct {
	Bench             string
	SA4, NoCoLT8, SA8 float64
}

// Figure20 runs the associativity study: fixed 128-entry L2 at 4-way
// vs 8-way, with and without CoLT-SA.
func Figure20(opts Options) ([]AssocRow, error) {
	base8 := core.BaselineConfig()
	base8.L2Sets, base8.L2Ways = 16, 8
	sa8 := core.CoLTSAConfig(core.DefaultCoLTShift)
	sa8.L2Sets, sa8.L2Ways = 16, 8
	variants := []Variant{
		{Name: "base-4way", Config: core.BaselineConfig()},
		{Name: "sa-4way", Config: core.CoLTSAConfig(core.DefaultCoLTShift)},
		{Name: "base-8way", Config: base8},
		{Name: "sa-8way", Config: sa8},
	}
	ev, err := RunEvaluation(opts, variants)
	if err != nil {
		return nil, err
	}
	var rows []AssocRow
	for _, res := range ev.Results {
		base, _ := res.Variant("base-4way")
		row := AssocRow{Bench: res.Bench}
		if v, ok := res.Variant("sa-4way"); ok {
			row.SA4 = stats.PercentEliminated(float64(base.TLB.L2Misses), float64(v.TLB.L2Misses))
		}
		if v, ok := res.Variant("base-8way"); ok {
			row.NoCoLT8 = stats.PercentEliminated(float64(base.TLB.L2Misses), float64(v.TLB.L2Misses))
		}
		if v, ok := res.Variant("sa-8way"); ok {
			row.SA8 = stats.PercentEliminated(float64(base.TLB.L2Misses), float64(v.TLB.L2Misses))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderFigure20 formats the associativity study as text.
func RenderFigure20(rows []AssocRow) string {
	t := stats.NewTable("Benchmark", "4-way CoLT-SA", "8-way no CoLT", "8-way CoLT-SA")
	var s4, n8, s8 stats.Summary
	for _, r := range rows {
		t.AddRow(r.Bench, r.SA4, r.NoCoLT8, r.SA8)
		s4.Add(r.SA4)
		n8.Add(r.NoCoLT8)
		s8.Add(r.SA8)
	}
	t.AddRow("Average", s4.Mean(), n8.Mean(), s8.Mean())
	return "Figure 20: % of baseline (4-way, no CoLT) L2 misses eliminated\n" + t.String()
}

// ---------------------------------------------------------------------
// §7.1.3 ablations: the L2 fill policies of CoLT-FA and CoLT-All.
// ---------------------------------------------------------------------

// AblationFAL2Fill compares CoLT-FA with and without bringing the
// requested translation into the L2 TLB.
func AblationFAL2Fill(opts Options) (*Evaluation, error) {
	noFill := core.CoLTFAConfig()
	noFill.FAL2Fill = false
	return RunEvaluation(opts, []Variant{
		{Name: "baseline", Config: core.BaselineConfig()},
		{Name: "fa-l2fill", Config: core.CoLTFAConfig()},
		{Name: "fa-nofill", Config: noFill},
	})
}

// AblationAllL2Fill compares CoLT-All with and without inserting the
// clipped coalesced entry into the L2 TLB.
func AblationAllL2Fill(opts Options) (*Evaluation, error) {
	noFill := core.CoLTAllConfig()
	noFill.AllL2Fill = false
	return RunEvaluation(opts, []Variant{
		{Name: "baseline", Config: core.BaselineConfig()},
		{Name: "all-l2fill", Config: core.CoLTAllConfig()},
		{Name: "all-nofill", Config: noFill},
	})
}
