package experiments

import (
	"testing"

	"colt/internal/arch"
	"colt/internal/contig"
	"colt/internal/mm"
	"colt/internal/workload"
)

// TestProbeSystemState is a diagnostic: it prints the memory state the
// characterization runs against (free-block histogram, pinned density,
// THP statistics, contiguity) so calibration drift is visible in -v
// output. It asserts only broad sanity.
func TestProbeSystemState(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic probe")
	}
	opts := DefaultOptions()
	opts.Frames = 1 << 18
	spec, _ := workload.ByName("Mcf")
	for _, setup := range []SystemSetup{SetupTHSOnNormal, SetupTHSOffNormal, SetupTHSOffLow} {
		sys, master, _, err := buildSystem(setup, opts, spec.Name, nil)
		if err != nil {
			t.Fatal(err)
		}
		free := sys.Buddy.FreePages()
		var hist [mm.MaxOrder]int
		for k := 0; k < mm.MaxOrder; k++ {
			hist[k] = sys.Buddy.FreeBlocksOfOrder(k)
		}
		pinned := 0
		for i := 0; i < sys.Phys.NumFrames(); i++ {
			fr := sys.Phys.Frame(arch.PFN(i))
			if fr.Allocated && !fr.Movable {
				pinned++
			}
		}
		proc, err := sys.NewProcess()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := workload.Build(spec.Scale(opts.Scale), proc, master.Stream("workload")); err != nil {
			t.Fatal(err)
		}
		res := contig.Scan(proc.Table)
		t.Logf("%s:", setup.Name)
		t.Logf("  pre-bench free=%d (%.0f%%), pinned(unmovable)=%d (1/%d), blocks=%v",
			free, 100*float64(free)/float64(sys.Phys.NumFrames()), pinned,
			safeDiv(sys.Phys.NumFrames(), pinned), hist)
		t.Logf("  THP: %+v  compact: %+v", sys.THP.Stats(), sys.Compactor.Stats())
		t.Logf("  contiguity: avg=%.1f nonSuper=%d super=%d maxRun=%d frac>512=%.2f",
			res.AverageContiguity(), res.NonSuperPages, res.SuperPages, res.MaxRun, res.FractionAtLeast(513))
		if res.NonSuperPages == 0 {
			t.Errorf("%s: everything superpaged", setup.Name)
		}
	}
}

func safeDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return a / b
}
