package experiments

import (
	"testing"
)

// TestParallelDeterminism is the regression guard for the experiment
// engine's core promise: the worker count is a throughput knob, never a
// results knob. A quick Figure 18 evaluation must render byte-identical
// output at -parallel 1 and -parallel 8. This holds because every
// (benchmark × setup) job derives its RNG streams from
// (opts.Seed, benchmark, setup) by name, so nothing observable depends
// on which goroutine runs a job or in what order jobs finish.
func TestParallelDeterminism(t *testing.T) {
	opts := QuickOptions()
	opts.Refs = 20_000
	opts.Warmup = 2_000

	render := func(parallel int) string {
		o := opts
		o.Parallel = parallel
		ev, err := RunStandardEvaluation(o)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return RenderEliminations(
			"Figure 18: % of baseline TLB misses eliminated",
			[]string{"colt-sa", "colt-fa", "colt-all"}, ev.Eliminations())
	}

	serial := render(1)
	concurrent := render(8)
	if serial != concurrent {
		t.Errorf("rendered Figure 18 differs between -parallel 1 and -parallel 8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", serial, concurrent)
	}
}

// TestParallelContiguityDeterminism covers the characterization-side
// drivers (no TLB simulation): the memhog sweep fans (benchmark × load)
// jobs and must be worker-count independent too.
func TestParallelContiguityDeterminism(t *testing.T) {
	opts := QuickOptions()

	run := func(parallel int) string {
		o := opts
		o.Parallel = parallel
		rows, err := Figure16(o)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return RenderMemhog("Figure 16", rows)
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("rendered Figure 16 differs between -parallel 1 and -parallel 8:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", a, b)
	}
}
