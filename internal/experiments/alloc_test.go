package experiments

import (
	"testing"

	"colt/internal/core"
	"colt/internal/telemetry"
	"colt/internal/workload"
)

// TestSteadyStateAccessZeroAlloc pins the simulator's per-reference
// cost: after warmup, one benchSim.step — workload generation, VPN
// resolve, every variant's TLB probe + possible page walk, and the
// data-cache access — must not touch the heap. Any regression here
// multiplies across the millions of references of a full sweep.
func TestSteadyStateAccessZeroAlloc(t *testing.T) {
	opts := QuickOptions()
	opts.Refs = 0
	stepAllocFree(t, opts)
}

// TestSteadyStateAccessZeroAllocWithTelemetry pins the same bound with
// the full observability stack live: histograms on, an event tracer
// attached, per-variant sinks wired into every TLB level, and the
// reference clock advancing. The tracer's ring and the sinks'
// fixed-size histograms are allocated up front, so emitting events and
// observing values must stay off the heap.
func TestSteadyStateAccessZeroAllocWithTelemetry(t *testing.T) {
	opts := QuickOptions()
	opts.Refs = 0
	opts.Histograms = true
	opts.Events = new(telemetry.TraceSet)
	stepAllocFree(t, opts)
}

// stepAllocFree builds a two-variant Mcf benchSim under opts, warms it
// up, and asserts steady-state steps allocate nothing.
func stepAllocFree(t *testing.T, opts Options) {
	t.Helper()
	spec, err := workload.ByName("Mcf")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := newBenchSim(spec, SetupTHSOnNormal, opts, []Variant{
		{Name: "baseline", Config: core.BaselineConfig()},
		{Name: "colt-all", Config: core.CoLTAllConfig()},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: populate TLBs, walk caches, and data caches so the
	// measured steps exercise the steady-state mix of hits and misses
	// rather than cold-start fills.
	ref := 0
	for ; ref < opts.Warmup; ref++ {
		if err := b.step(ref); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(2000, func() {
		// Keep ref advancing so the sampled oracle check (every 1024
		// refs) is included in the average at its real frequency.
		if err := b.step(ref); err != nil {
			t.Fatal(err)
		}
		ref++
	})
	if avg != 0 {
		t.Errorf("benchSim.step allocates %.3f times per reference in steady state, want 0", avg)
	}

	// The batched hot loop carries the same guarantee: decoding a whole
	// batch, every variant's pass, the shared-front recording, and the
	// LLC replays must all run out of the preallocated buffers. (The
	// frontEvents spill buffer grows early in the run; after warmup its
	// capacity has reached steady state.)
	avg = testing.AllocsPerRun(200, func() {
		n, err := b.stepBatch(ref, DefaultBatchSize)
		if err != nil {
			t.Fatal(err)
		}
		ref += n
	})
	if avg != 0 {
		t.Errorf("benchSim.stepBatch allocates %.3f times per batch in steady state, want 0", avg)
	}
}
