package experiments

import (
	"testing"

	"colt/internal/mm"
	"colt/internal/vm"
	"colt/internal/workload"
)

// TestTinyMachineOOMIsGraceful: a workload far too big for the machine
// must fail with an error, not a panic, and leave the allocator
// consistent.
func TestTinyMachineOOMIsGraceful(t *testing.T) {
	opts := QuickOptions()
	opts.Frames = 1 << 11 // 8 MB machine
	opts.Scale = 1.0      // full footprints
	spec, _ := workload.ByName("Mcf")
	_, err := RunBenchmark(spec, SetupTHSOnNormal, opts, StandardVariants()[:1])
	if err == nil {
		t.Fatal("oversized run succeeded on a tiny machine")
	}
}

// TestThrashingRunStillSound: oversubscribe on purpose (big footprint +
// memhog) and verify the TLB simulation completes with the oracle checks
// intact and major faults recorded.
func TestThrashingRunStillSound(t *testing.T) {
	opts := QuickOptions()
	opts.Refs = 30_000
	opts.Warmup = 2_000
	opts.Scale = 0.4 // large relative to the 32k-frame quick machine
	setup := SetupTHSOnMemhog50
	spec, _ := workload.ByName("Tigr")
	res, err := RunBenchmark(spec, setup, opts, StandardVariants())
	if err != nil {
		t.Fatal(err)
	}
	base, _ := res.Variant("baseline")
	if base.TLB.Accesses != uint64(opts.Refs) {
		t.Fatalf("accesses = %d", base.TLB.Accesses)
	}
	if base.TLB.Faults != 0 {
		t.Fatal("unresolved faults leaked into the TLB stats")
	}
}

// TestCompactionDuringSimulationShootsDown: verify that migrations
// during the measured run reach the simulators as shootdowns and never
// leave stale translations (the oracle inside RunBenchmark checks every
// 1024th access; here we force heavy compaction via a fragmented
// mid-run churn).
func TestCompactionDuringSimulationShootsDown(t *testing.T) {
	opts := QuickOptions()
	opts.Refs = 40_000
	opts.MidRunChurn = true
	spec, _ := workload.ByName("Gobmk")
	res, err := RunBenchmark(spec, SetupTHSOnNormal, opts, StandardVariants())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Variants {
		if v.TLB.Faults != 0 {
			t.Fatalf("%s: faults = %d", v.Name, v.TLB.Faults)
		}
	}
}

// TestLowCompactionModeEndToEnd runs the worst-case kernel setting.
func TestLowCompactionModeEndToEnd(t *testing.T) {
	opts := QuickOptions()
	opts.Refs = 10_000
	spec, _ := workload.ByName("FastaProt")
	res, err := RunBenchmark(spec, SetupTHSOffLow, opts, StandardVariants()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if res.Setup.Compaction != mm.CompactionLow {
		t.Fatal("setup not propagated")
	}
	if res.Contig.SuperPages != 0 {
		t.Fatal("THS-off produced superpages")
	}
	_ = vm.Config{}
}
