package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"colt/internal/metrics"
)

// The batching-equivalence harness: stepBatch is an optimization, not a
// semantic change, so the stable report JSON of every golden experiment
// must be byte-identical at every batch size — including 1, which
// forces the scalar step loop — and at every parallel width. This is
// the contract that lets the hot loop batch aggressively: any
// observable divergence (a counter, a latency, a histogram bucket)
// fails here before it can reach a golden.

// equivReport runs one golden experiment at the given batch size and
// parallel width and returns its stable JSON.
func equivReport(name string, run func(Options) error, batch, parallel int) ([]byte, error) {
	opts := GoldenOptions()
	opts.BatchSize = batch
	opts.Parallel = parallel
	opts.Metrics = metrics.NewCollector()
	if err := run(opts); err != nil {
		return nil, fmt.Errorf("%s[batch=%d,par=%d]: %w", name, batch, parallel, err)
	}
	if opts.Metrics.Len() == 0 {
		return nil, fmt.Errorf("%s[batch=%d,par=%d]: no metrics records collected", name, batch, parallel)
	}
	return opts.Metrics.Report(name, opts.Snapshot()).StableJSON()
}

func TestBatchSizeEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence runs simulate full reference streams")
	}
	batches := []int{1, 8, 64, 256}
	widths := []int{1, 8}
	for _, g := range goldenExperiments {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			// The reference report: scalar loop, serial driver.
			want, err := equivReport(g.name, g.run, 1, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range batches {
				for _, parallel := range widths {
					if batch == 1 && parallel == 1 {
						continue
					}
					got, err := equivReport(g.name, g.run, batch, parallel)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						diffs := metrics.Diff(got, want)
						t.Errorf("%s: batch=%d parallel=%d diverges from scalar serial run (%d fields differ):\n%s",
							g.name, batch, parallel, len(diffs), strings.Join(diffs, "\n"))
					}
				}
			}
		})
	}
}
