package experiments

import (
	"fmt"
	"time"

	"colt/internal/contig"
	"colt/internal/fault"
	"colt/internal/metrics"
	"colt/internal/stats"
	"colt/internal/vm"
	"colt/internal/workload"
)

// The paper's kernel instrumentation walks the page table every five
// seconds, "capturing contiguity changes through the benchmark run"
// (§5.1.1). ContiguityTimeline reproduces that methodology: it samples
// the workload's page-table contiguity at regular points across the
// run — after the build, and between slices of foreground references
// interleaved with background system activity — rather than only once.

// TimelinePoint is one periodic page-table scan.
type TimelinePoint struct {
	// RefsDone is how many foreground references had executed.
	RefsDone int
	// PageAvg and RunAvg are the two contiguity averages.
	PageAvg, RunAvg float64
	// MappedPages is the workload's resident page count (drops under
	// swap pressure).
	MappedPages int
	// Superpages counts currently huge-mapped pages.
	Superpages int
}

// ContiguityTimeline runs one benchmark under the setup and scans its
// page table at `samples` evenly spaced points.
func ContiguityTimeline(spec workload.Spec, setup SystemSetup, opts Options, samples int) ([]TimelinePoint, error) {
	if samples < 2 {
		return nil, fmt.Errorf("timeline needs at least 2 samples, got %d", samples)
	}
	start := time.Now()
	sys, master, plane, err := buildSystem(setup, opts, spec.Name, nil)
	if err != nil {
		return nil, err
	}
	proc, err := sys.NewProcess()
	if err != nil {
		return nil, err
	}
	proc.EnableSwap()
	w, err := workload.Build(scaledSpec(spec, opts), proc, master.Stream("workload"))
	if err != nil {
		return nil, fmt.Errorf("building %s: %w", spec.Name, err)
	}
	churnRNG := master.Stream("midrun-churn")
	churnProc, err := sys.NewProcess()
	if err != nil {
		return nil, err
	}
	var churnLive []*vm.Region

	scan := func(refs int) TimelinePoint {
		res := contig.Scan(proc.Table)
		return TimelinePoint{
			RefsDone:    refs,
			PageAvg:     res.AverageContiguity(),
			RunAvg:      res.RunWeightedAverage(),
			MappedPages: res.NonSuperPages + res.SuperPages,
			Superpages:  res.SuperPages,
		}
	}

	points := []TimelinePoint{scan(0)}
	slice := opts.Refs / (samples - 1)
	if slice == 0 {
		slice = 1
	}
	done := 0
	for s := 1; s < samples; s++ {
		for i := 0; i < slice; i++ {
			if err := plane.Fail(fault.SiteTraceCorrupt); err != nil {
				return nil, fmt.Errorf("%s: decoding trace record %d: %w", spec.Name, done, err)
			}
			va, _, _ := w.Next()
			vpn := va.Page()
			// Touch pages so swap pressure and re-faults happen as in
			// a real run (no TLB simulation needed for contiguity).
			if _, _, ok := proc.Resolve(vpn); !ok {
				if _, err := proc.EnsureResident(vpn); err != nil {
					return nil, err
				}
			}
			done++
			if i%512 == 511 {
				// Background OS activity between slices of foreground
				// work.
				if reg, err := churnProc.Malloc(churnRNG.IntRange(1, 24)); err == nil {
					churnLive = append(churnLive, reg)
					if len(churnLive) > 32 {
						if err := churnProc.Free(churnLive[0]); err != nil {
							return nil, err
						}
						churnLive = churnLive[1:]
					}
				}
			}
		}
		sys.Idle(32)
		points = append(points, scan(done))
	}
	if err := auditSystem(opts, "at timeline end", sys); err != nil {
		return nil, err
	}
	if opts.Metrics != nil {
		rec := metrics.Record{
			Kind:  metrics.KindTimeline,
			Bench: spec.Name,
			Setup: setup.Name,
			Seed:  seedFor(opts.Seed, spec.Name, setup.Name),
		}
		for _, p := range points {
			rec.Timeline = append(rec.Timeline, metrics.TimelinePoint{
				RefsDone:    p.RefsDone,
				PageAvg:     p.PageAvg,
				RunAvg:      p.RunAvg,
				MappedPages: p.MappedPages,
				Superpages:  p.Superpages,
			})
		}
		opts.Metrics.Add(rec, time.Since(start))
	}
	return points, nil
}

// Timelines runs ContiguityTimeline for several benchmarks, fanning
// them across the scheduler; results keep the order of specs. Under
// fault injection a failed benchmark leaves a nil entry at its
// position rather than failing the whole sweep.
func Timelines(specs []workload.Spec, setup SystemSetup, opts Options, samples int) ([][]TimelinePoint, error) {
	series, ok, err := mapJobs(opts, specs,
		func(spec workload.Spec) jobMeta {
			return jobMeta{kind: "timeline", bench: spec.Name, setup: setup.Name}
		},
		func(spec workload.Spec, opts Options) ([]TimelinePoint, error) {
			return ContiguityTimeline(spec, setup, opts, samples)
		})
	if err != nil {
		return nil, err
	}
	// Copy survivors into a fresh slice: a timed-out job's goroutine may
	// still be writing into the scheduler's result slot.
	out := make([][]TimelinePoint, len(specs))
	for i := range series {
		if ok[i] {
			out[i] = series[i]
		}
	}
	return out, nil
}

// RenderTimeline formats a timeline as text.
func RenderTimeline(bench string, setup SystemSetup, points []TimelinePoint) string {
	t := stats.NewTable("Refs", "PageAvg", "RunAvg", "Mapped", "Superpages")
	for _, p := range points {
		t.AddRow(p.RefsDone, p.PageAvg, p.RunAvg, p.MappedPages, p.Superpages)
	}
	return fmt.Sprintf("Contiguity over time: %s under %s\n%s", bench, setup.Name, t.String())
}
