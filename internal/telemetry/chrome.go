package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// JobTrace is one job's exportable telemetry: its phase spans and the
// retained events of its tracer, plus display names for the event
// thread IDs (index 0 = the OS thread, 1.. = variants).
type JobTrace struct {
	Label   string
	Threads []string
	Spans   []Span
	Events  []Event
}

// TraceSet collects JobTraces from concurrently running jobs and
// renders them as one Chrome trace-event file. Add is safe for
// concurrent use; rendering sorts jobs by label so the file is
// byte-identical at every scheduler width. A nil *TraceSet is a valid
// disabled set.
type TraceSet struct {
	mu   sync.Mutex
	jobs []JobTrace
}

// Add records one job's trace. Nil-safe and concurrency-safe.
func (ts *TraceSet) Add(jt JobTrace) {
	if ts == nil {
		return
	}
	ts.mu.Lock()
	ts.jobs = append(ts.jobs, jt)
	ts.mu.Unlock()
}

// Len reports how many job traces have been added.
func (ts *TraceSet) Len() int {
	if ts == nil {
		return 0
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.jobs)
}

// chromeEvent is one Chrome trace-event object. The format is the
// Trace Event JSON accepted by Perfetto and chrome://tracing: "M"
// metadata rows name processes/threads, "X" complete events carry a
// duration, "i" instant events mark points. We map simulated time
// (the reference index) onto the ts microsecond axis one-to-one.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   *uint64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome renders every added job as Chrome trace-event JSON
// ({"traceEvents": [...], ...}). Jobs become processes (pid assigned
// in label order), event threads become tids, spans land on the OS
// thread, and each simulator event becomes an instant event with its
// kind-specific payload in args.
func (ts *TraceSet) WriteChrome(w io.Writer) error {
	if ts == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	ts.mu.Lock()
	jobs := append([]JobTrace(nil), ts.jobs...)
	ts.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Label < jobs[j].Label })

	var events []chromeEvent
	for i, jt := range jobs {
		pid := i + 1
		events = append(events, chromeEvent{
			Name: "process_name", Phase: "M", PID: pid,
			Args: map[string]any{"name": jt.Label},
		})
		for tid, name := range jt.Threads {
			events = append(events, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": name},
			})
		}
		for _, sp := range jt.Spans {
			dur := sp.EndRef - sp.StartRef
			events = append(events, chromeEvent{
				Name: sp.Name, Phase: "X", TS: sp.StartRef, Dur: &dur, PID: pid,
			})
		}
		for _, ev := range jt.Events {
			events = append(events, chromeEvent{
				Name: ev.Kind.String(), Phase: "i", TS: ev.Ref,
				PID: pid, TID: int(ev.TID), Scope: "t",
				Args: eventArgs(ev),
			})
		}
	}

	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	for i, ev := range events {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("encoding trace event %d: %w", i, err)
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, `],"displayTimeUnit":"ms"}`)
	return err
}

// eventArgs renders an event's kind-specific payload.
func eventArgs(ev Event) map[string]any {
	args := map[string]any{}
	switch ev.Kind {
	case EvTLBHit, EvTLBMiss:
		args["level"] = LevelName(ev.Level)
		args["vpn"] = ev.Arg
	case EvCoalesce:
		args["base_vpn"] = ev.Arg
		args["run_len"] = ev.Arg2
	case EvMerge:
		args["level"] = LevelName(ev.Level)
		args["base_vpn"] = ev.Arg
		args["new_len"] = ev.Arg2
	case EvEvict:
		args["level"] = LevelName(ev.Level)
		args["base_vpn"] = ev.Arg
		args["lifetime_refs"] = ev.Arg2
	case EvPageWalk:
		args["vpn"] = ev.Arg
		args["cycles"] = ev.Arg2
	case EvTHPPromote, EvTHPDemote:
		args["base_vpn"] = ev.Arg
		args["base_pfn"] = ev.Arg2
	case EvCompactMigrate:
		args["from_pfn"] = ev.Arg
		args["to_pfn"] = ev.Arg2
	case EvFaultInject:
		args["site_index"] = ev.Arg
	}
	return args
}
