package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilReceiversAreSafe(t *testing.T) {
	var tr *Tracer
	tr.SetNow(5)
	tr.Emit(EvTLBHit, 1, LevelL1, 10, 0)
	tr.SetStride(EvTLBHit, 2)
	if tr.Events() != nil || tr.Seen(EvTLBHit) != 0 || tr.Dropped() != 0 || tr.Now() != 0 {
		t.Fatal("nil tracer must observe nothing")
	}

	var h *Hist
	h.Observe(7)
	h.Merge(&Hist{Count: 1})
	if h.Mean() != 0 {
		t.Fatal("nil hist must observe nothing")
	}

	var s *Sink
	s.Hit(LevelL1, 1)
	s.Miss(LevelL2, 1)
	s.Walk(1, 40)
	s.Fill(1, 4)
	s.Merge(LevelL2, 1, 8)
	s.Evict(LevelL2, 1, 100)
	if s.Tracer() != nil {
		t.Fatal("nil sink has no tracer")
	}

	var sp *Spans
	sp.Begin("warmup", 0)
	sp.End(10)
	sp.OnPhase(func(string) {})
	if sp.All() != nil {
		t.Fatal("nil spans must record nothing")
	}

	var ts *TraceSet
	ts.Add(JobTrace{Label: "x"})
	if ts.Len() != 0 {
		t.Fatal("nil trace set must record nothing")
	}
	var buf bytes.Buffer
	if err := ts.WriteChrome(&buf); err != nil {
		t.Fatalf("nil TraceSet WriteChrome: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil TraceSet output not valid JSON: %s", buf.String())
	}

	var r *Reporter
	r.AddJobs(3)
	r.Phase("a", "warmup")
	r.Done("a", true)
	if d, tot, f := r.Counts(); d != 0 || tot != 0 || f != 0 {
		t.Fatal("nil reporter must count nothing")
	}
}

func TestDisabledPathsDoNotAllocate(t *testing.T) {
	var tr *Tracer
	var h *Hist
	var s *Sink
	allocs := testing.AllocsPerRun(1000, func() {
		tr.SetNow(1)
		tr.Emit(EvTLBMiss, 1, LevelL1, 2, 3)
		h.Observe(9)
		s.Hit(LevelL1, 4)
		s.Walk(4, 30)
		s.Fill(4, 2)
		s.Evict(LevelL2, 4, 55)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestEnabledPathsDoNotAllocate(t *testing.T) {
	tr := NewTracer(64)
	s := NewSink(tr, 1)
	var h Hist
	var i uint64
	allocs := testing.AllocsPerRun(1000, func() {
		i++
		tr.SetNow(i)
		s.Hit(LevelL1, i)
		s.Miss(LevelL2, i)
		s.Walk(i, 24)
		s.Fill(i, 4)
		s.Evict(LevelL2, i, i)
		h.Observe(i)
	})
	if allocs != 0 {
		t.Fatalf("enabled telemetry allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestTracerSamplingIsDeterministicByOrdinal(t *testing.T) {
	tr := NewTracer(1024)
	tr.SetStride(EvTLBHit, 4)
	for i := 0; i < 16; i++ {
		tr.SetNow(uint64(i))
		tr.Emit(EvTLBHit, 1, LevelL1, uint64(i), 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4 (stride 4 over 16)", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(i * 4); ev.Ref != want {
			t.Fatalf("event %d at ref %d, want %d", i, ev.Ref, want)
		}
	}
	if tr.Seen(EvTLBHit) != 16 {
		t.Fatalf("Seen = %d, want 16 (sampling must not hide totals)", tr.Seen(EvTLBHit))
	}
}

func TestTracerRingWrapKeepsTail(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.SetNow(uint64(i))
		tr.Emit(EvEvict, 0, LevelL2, uint64(i), 0)
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Ref != want {
			t.Fatalf("ring slot %d has ref %d, want %d (oldest-first tail)", i, ev.Ref, want)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
}

func TestHistBucketsAndMerge(t *testing.T) {
	var h Hist
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(1 << 40)
	if h.Count != 5 || h.Max != 1<<40 || h.Sum != 6+1<<40 {
		t.Fatalf("bad summary: count=%d max=%d sum=%d", h.Count, h.Max, h.Sum)
	}
	if h.Buckets[0] != 1 || h.Buckets[1] != 1 || h.Buckets[2] != 2 || h.Buckets[41] != 1 {
		t.Fatalf("bad buckets: %v", h.Buckets[:4])
	}
	var m Hist
	m.Merge(&h)
	m.Merge(&h)
	if m.Count != 10 || m.Buckets[2] != 4 || m.Max != 1<<40 {
		t.Fatalf("bad merge: count=%d b2=%d max=%d", m.Count, m.Buckets[2], m.Max)
	}
	if BucketLo(0) != 0 || BucketLo(1) != 1 || BucketLo(5) != 16 {
		t.Fatal("BucketLo mapping wrong")
	}
}

func TestSpansSequenceAndPhaseHook(t *testing.T) {
	var sp Spans
	var phases []string
	sp.OnPhase(func(name string) { phases = append(phases, name) })
	sp.Begin("build", 0)
	sp.Begin("warmup", 0)
	sp.Begin("simulate", 2000)
	sp.End(22000)
	all := sp.All()
	if len(all) != 3 {
		t.Fatalf("got %d spans, want 3", len(all))
	}
	want := []Span{
		{Name: "build", StartRef: 0, EndRef: 0},
		{Name: "warmup", StartRef: 0, EndRef: 2000},
		{Name: "simulate", StartRef: 2000, EndRef: 22000},
	}
	for i, sp := range all {
		if sp.Name != want[i].Name || sp.StartRef != want[i].StartRef || sp.EndRef != want[i].EndRef {
			t.Fatalf("span %d = %+v, want %+v", i, sp, want[i])
		}
		if sp.Wall < 0 {
			t.Fatalf("span %d has negative wall %v", i, sp.Wall)
		}
	}
	if len(phases) != 3 || phases[2] != "simulate" {
		t.Fatalf("phase hook saw %v", phases)
	}
	sp.End(99999) // double End is a no-op
	if len(sp.All()) != 3 {
		t.Fatal("End without open span must not add a span")
	}
}

func TestSinkHistogramsAccumulate(t *testing.T) {
	s := NewSink(nil, 1)
	s.Fill(100, 1)
	s.Fill(104, 4)
	s.Walk(100, 24)
	s.Walk(104, 48)
	s.Evict(LevelL1, 100, 512)
	if s.CoalesceLen.Count != 2 || s.CoalesceLen.Sum != 5 {
		t.Fatalf("coalesce hist: %+v", s.CoalesceLen)
	}
	if s.WalkCycles.Count != 2 || s.WalkCycles.Max != 48 {
		t.Fatalf("walk hist: %+v", s.WalkCycles)
	}
	if s.EntryLife.Count != 1 || s.EntryLife.Sum != 512 {
		t.Fatalf("life hist: %+v", s.EntryLife)
	}
}

func TestWriteChromeProducesValidTraceEvents(t *testing.T) {
	tr := NewTracer(16)
	tr.SetNow(7)
	tr.Emit(EvCoalesce, 1, LevelNone, 4096, 4)
	tr.SetNow(9)
	tr.Emit(EvEvict, 1, LevelL2, 4096, 33)

	var ts TraceSet
	ts.Add(JobTrace{
		Label:   "bench/mcf/ths-on",
		Threads: []string{"os", "colt-all"},
		Spans:   []Span{{Name: "simulate", StartRef: 2000, EndRef: 22000, Wall: time.Millisecond}},
		Events:  tr.Events(),
	})
	ts.Add(JobTrace{Label: "bench/astar/ths-on", Threads: []string{"os"}})

	var buf bytes.Buffer
	if err := ts.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	// Required Chrome trace-event keys on every row.
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"ph", "ts", "pid", "name"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing required key %q: %v", i, key, ev)
			}
		}
	}
	// pid assignment is by sorted label: astar < mcf.
	var astarPID, mcfPID float64
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "M" && ev["name"] == "process_name" {
			name := ev["args"].(map[string]any)["name"].(string)
			if strings.Contains(name, "astar") {
				astarPID = ev["pid"].(float64)
			}
			if strings.Contains(name, "mcf") {
				mcfPID = ev["pid"].(float64)
			}
		}
	}
	if astarPID != 1 || mcfPID != 2 {
		t.Fatalf("pids not label-sorted: astar=%v mcf=%v", astarPID, mcfPID)
	}
	// The span must be a complete event with a duration.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == "simulate" {
			found = true
			if ev["dur"].(float64) != 20000 {
				t.Fatalf("span dur = %v, want 20000", ev["dur"])
			}
			if ev["ts"].(float64) != 2000 {
				t.Fatalf("span ts = %v, want 2000", ev["ts"])
			}
		}
	}
	if !found {
		t.Fatal("no complete-span event in output")
	}

	// Determinism: rendering again (jobs added in any order) is byte-identical.
	var ts2 TraceSet
	ts2.Add(JobTrace{Label: "bench/astar/ths-on", Threads: []string{"os"}})
	ts2.Add(JobTrace{
		Label:   "bench/mcf/ths-on",
		Threads: []string{"os", "colt-all"},
		Spans:   []Span{{Name: "simulate", StartRef: 2000, EndRef: 22000, Wall: time.Millisecond}},
		Events:  tr.Events(),
	})
	var buf2 bytes.Buffer
	if err := ts2.WriteChrome(&buf2); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("trace output depends on Add order; must be label-sorted")
	}
}

func TestReporterLines(t *testing.T) {
	var buf bytes.Buffer
	r := NewReporter(&buf)
	r.AddJobs(2)
	r.Phase("bench/mcf/ths-on", "simulate")
	r.Done("bench/mcf/ths-on", true)
	r.Done("bench/astar/ths-on", false)
	out := buf.String()
	if !strings.Contains(out, "[1/2] bench/mcf/ths-on (simulate)") {
		t.Fatalf("missing first progress line:\n%s", out)
	}
	if !strings.Contains(out, "[2/2] bench/astar/ths-on FAILED  failures=1") {
		t.Fatalf("missing failure line:\n%s", out)
	}
	if d, tot, f := r.Counts(); d != 2 || tot != 2 || f != 1 {
		t.Fatalf("counts = %d/%d failed %d", d, tot, f)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EvTLBHit; k < numEventKinds; k++ {
		if s := k.String(); s == "" || s == "event(?)" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if LevelName(LevelL1) != "l1" || LevelName(LevelSup) != "sup" || LevelName(LevelNone) != "os" {
		t.Fatal("level names wrong")
	}
}

// TestReporterHookReceivesOrderedEvents: the hook sees every progress
// event with contiguous sequence numbers and running counters — the
// contract SSE streams replay against.
func TestReporterHookReceivesOrderedEvents(t *testing.T) {
	r := NewReporter(nil) // nil writer: hook-only reporter
	var got []ProgressEvent
	r.SetHook(func(ev ProgressEvent) { got = append(got, ev) })
	r.AddJobs(2)
	r.Phase("bench/mcf/ths-on", "build")
	r.Phase("bench/mcf/ths-on", "simulate")
	r.Done("bench/mcf/ths-on", true)
	r.Done("bench/gups/ths-on", false)
	if len(got) != 5 {
		t.Fatalf("hook saw %d events, want 5", len(got))
	}
	for i, ev := range got {
		if ev.Seq != i+1 {
			t.Errorf("event %d has seq %d, want %d", i, ev.Seq, i+1)
		}
	}
	if got[0].Kind != ProgressJobsAdded || got[0].Total != 2 {
		t.Errorf("event 0 = %+v, want jobs-added with total 2", got[0])
	}
	if got[2].Kind != ProgressPhase || got[2].Phase != "simulate" {
		t.Errorf("event 2 = %+v, want phase simulate", got[2])
	}
	if got[3].Kind != ProgressDone || !got[3].OK || got[3].Phase != "simulate" || got[3].Done != 1 {
		t.Errorf("event 3 = %+v, want ok done in phase simulate with done=1", got[3])
	}
	if got[4].Kind != ProgressDone || got[4].OK || got[4].Failed != 1 || got[4].Done != 2 {
		t.Errorf("event 4 = %+v, want failed done with failed=1 done=2", got[4])
	}
	// Nil reporters and removed hooks stay safe.
	var nilR *Reporter
	nilR.SetHook(func(ProgressEvent) { t.Error("nil reporter delivered an event") })
	nilR.Done("x", true)
	r.SetHook(nil)
	r.Done("bench/x/y", true)
}

// TestReporterNilWriterPrintsNothing: a hook-only reporter must never
// write (it would panic on the nil writer if it tried).
func TestReporterNilWriterPrintsNothing(t *testing.T) {
	r := NewReporter(nil)
	r.AddJobs(1)
	r.Phase("job", "build")
	r.Done("job", true)
	if d, tot, f := r.Counts(); d != 1 || tot != 1 || f != 0 {
		t.Fatalf("Counts = (%d,%d,%d), want (1,1,0)", d, tot, f)
	}
}
