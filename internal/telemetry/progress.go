package telemetry

import (
	"fmt"
	"io"
	"sync"
)

// Reporter is the opt-in live progress surface: one line to w (stderr
// in the CLI) per completed job, showing done/total, the job label,
// its last phase, and the running failure count from the degradation
// path. It is driven off telemetry spans via Spans.OnPhase and the
// scheduler's job hooks. A nil *Reporter is a valid disabled
// reporter; all methods are concurrency-safe.
type Reporter struct {
	mu     sync.Mutex
	w      io.Writer
	total  int
	done   int
	failed int
	phase  map[string]string
}

// NewReporter returns a progress reporter writing to w.
func NewReporter(w io.Writer) *Reporter {
	return &Reporter{w: w, phase: make(map[string]string)}
}

// AddJobs grows the expected-job total by n.
func (r *Reporter) AddJobs(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.total += n
	r.mu.Unlock()
}

// Phase records that job label entered the named phase.
func (r *Reporter) Phase(label, phase string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.phase[label] = phase
	r.mu.Unlock()
}

// Done marks job label finished (ok=false counts a failure) and
// prints one progress line.
func (r *Reporter) Done(label string, ok bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.done++
	if !ok {
		r.failed++
	}
	phase := r.phase[label]
	delete(r.phase, label)
	line := fmt.Sprintf("[%d/%d] %s", r.done, r.total, label)
	if phase != "" {
		line += " (" + phase + ")"
	}
	if !ok {
		line += " FAILED"
	}
	if r.failed > 0 {
		line += fmt.Sprintf("  failures=%d", r.failed)
	}
	fmt.Fprintln(r.w, line)
	r.mu.Unlock()
}

// Counts returns (done, total, failed) so far.
func (r *Reporter) Counts() (done, total, failed int) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.total, r.failed
}
