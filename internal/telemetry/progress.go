package telemetry

import (
	"fmt"
	"io"
	"sync"
)

// ProgressEventKind classifies one progress event.
type ProgressEventKind string

// The three progress event kinds: the expected-job total grew, a job
// entered a phase, a job finished.
const (
	ProgressJobsAdded ProgressEventKind = "jobs"
	ProgressPhase     ProgressEventKind = "phase"
	ProgressDone      ProgressEventKind = "done"
)

// ProgressEvent is one live progress update, delivered to the
// reporter's hook in emission order. Seq is a per-reporter sequence
// number (starting at 1), so a subscriber that replays a stored event
// log can detect gaps. Events carry no wall-clock timestamps: their
// order is wall-clock-dependent, their content is not.
type ProgressEvent struct {
	Seq   int               `json:"seq"`
	Kind  ProgressEventKind `json:"kind"`
	Label string            `json:"label,omitempty"`
	Phase string            `json:"phase,omitempty"`
	// OK is meaningful for ProgressDone events only.
	OK     bool `json:"ok,omitempty"`
	Done   int  `json:"done"`
	Total  int  `json:"total"`
	Failed int  `json:"failed"`
}

// Reporter is the opt-in live progress surface: one line to w (stderr
// in the CLI) per completed job, showing done/total, the job label,
// its last phase, and the running failure count from the degradation
// path. It is driven off telemetry spans via Spans.OnPhase and the
// scheduler's job hooks. A nil *Reporter is a valid disabled
// reporter, and a nil writer is a valid silent reporter (coltd uses
// one purely as an event source for SSE streams); all methods are
// concurrency-safe.
type Reporter struct {
	mu     sync.Mutex
	w      io.Writer
	total  int
	done   int
	failed int
	seq    int
	phase  map[string]string
	hook   func(ProgressEvent)
}

// NewReporter returns a progress reporter writing to w (nil for a
// hook-only reporter that prints nothing).
func NewReporter(w io.Writer) *Reporter {
	return &Reporter{w: w, phase: make(map[string]string)}
}

// SetHook registers fn to receive every progress event as it is
// emitted — the subscription point SSE streams hang off. fn is called
// synchronously under the reporter's lock, in event order, one call
// at a time; it must not call back into the reporter and should
// return quickly (hand the event to a channel or buffer, don't block
// on the network). A nil fn removes the hook.
func (r *Reporter) SetHook(fn func(ProgressEvent)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.hook = fn
	r.mu.Unlock()
}

// emit assigns the next sequence number and delivers ev to the hook.
// Callers must hold r.mu.
func (r *Reporter) emit(ev ProgressEvent) {
	r.seq++
	ev.Seq = r.seq
	ev.Done, ev.Total, ev.Failed = r.done, r.total, r.failed
	if r.hook != nil {
		r.hook(ev)
	}
}

// AddJobs grows the expected-job total by n.
func (r *Reporter) AddJobs(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.total += n
	r.emit(ProgressEvent{Kind: ProgressJobsAdded})
	r.mu.Unlock()
}

// Phase records that job label entered the named phase.
func (r *Reporter) Phase(label, phase string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.phase[label] = phase
	r.emit(ProgressEvent{Kind: ProgressPhase, Label: label, Phase: phase})
	r.mu.Unlock()
}

// Done marks job label finished (ok=false counts a failure) and
// prints one progress line.
func (r *Reporter) Done(label string, ok bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.done++
	if !ok {
		r.failed++
	}
	phase := r.phase[label]
	delete(r.phase, label)
	r.emit(ProgressEvent{Kind: ProgressDone, Label: label, Phase: phase, OK: ok})
	if r.w != nil {
		line := fmt.Sprintf("[%d/%d] %s", r.done, r.total, label)
		if phase != "" {
			line += " (" + phase + ")"
		}
		if !ok {
			line += " FAILED"
		}
		if r.failed > 0 {
			line += fmt.Sprintf("  failures=%d", r.failed)
		}
		fmt.Fprintln(r.w, line)
	}
	r.mu.Unlock()
}

// Counts returns (done, total, failed) so far.
func (r *Reporter) Counts() (done, total, failed int) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.total, r.failed
}
