package telemetry

// Sink is the per-variant observer handed to one TLB hierarchy: it
// forwards events to the job's shared Tracer under the variant's
// thread ID and accumulates the variant's distribution histograms.
// All methods are nil-safe and allocation-free, so a hierarchy
// instruments unconditionally and pays one branch when disabled.
type Sink struct {
	tracer *Tracer
	tid    uint8

	// CoalesceLen is the distribution of coalesced-run lengths over
	// TLB fills (1 = uncoalesced); WalkCycles the distribution of
	// modeled page-walk latencies; EntryLife the distribution of TLB
	// entry lifetimes, in references from fill to eviction.
	CoalesceLen Hist
	WalkCycles  Hist
	EntryLife   Hist
}

// NewSink returns a sink feeding tracer (which may be nil to collect
// histograms only) as thread tid.
func NewSink(tracer *Tracer, tid uint8) *Sink {
	return &Sink{tracer: tracer, tid: tid}
}

// Hit records a TLB hit at level.
func (s *Sink) Hit(level uint8, vpn uint64) {
	if s == nil {
		return
	}
	s.tracer.Emit(EvTLBHit, s.tid, level, vpn, 0)
}

// Miss records a miss at level (a probe that fell through).
func (s *Sink) Miss(level uint8, vpn uint64) {
	if s == nil {
		return
	}
	s.tracer.Emit(EvTLBMiss, s.tid, level, vpn, 0)
}

// Walk records a completed page walk and its modeled latency.
func (s *Sink) Walk(vpn uint64, cycles uint64) {
	if s == nil {
		return
	}
	s.WalkCycles.Observe(cycles)
	s.tracer.Emit(EvPageWalk, s.tid, LevelNone, vpn, cycles)
}

// Fill records a TLB fill of runLen coalesced translations starting
// at baseVPN; runs longer than one page are coalescing events.
func (s *Sink) Fill(baseVPN uint64, runLen uint64) {
	if s == nil {
		return
	}
	s.CoalesceLen.Observe(runLen)
	if runLen > 1 {
		s.tracer.Emit(EvCoalesce, s.tid, LevelNone, baseVPN, runLen)
	}
}

// Merge records a fill-time merge with a resident entry yielding a
// combined run of newLen translations.
func (s *Sink) Merge(level uint8, baseVPN uint64, newLen uint64) {
	if s == nil {
		return
	}
	s.tracer.Emit(EvMerge, s.tid, level, baseVPN, newLen)
}

// Evict records the capacity eviction of an entry that lived for life
// references since its fill.
func (s *Sink) Evict(level uint8, baseVPN uint64, life uint64) {
	if s == nil {
		return
	}
	s.EntryLife.Observe(life)
	s.tracer.Emit(EvEvict, s.tid, level, baseVPN, life)
}

// ResetHists zeroes the sink's histograms (after warmup), leaving the
// tracer attached. Nil-safe.
func (s *Sink) ResetHists() {
	if s == nil {
		return
	}
	s.CoalesceLen = Hist{}
	s.WalkCycles = Hist{}
	s.EntryLife = Hist{}
}

// Tracer returns the sink's event tracer (nil when event tracing is
// off but histograms are on).
func (s *Sink) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}
