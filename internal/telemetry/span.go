package telemetry

import "time"

// Span is one named interval of a job measured in simulated time
// (reference indices). StartRef/EndRef are golden-safe: they depend
// only on the workload, never on the scheduler or the wall clock.
// Wall is the wall-clock duration of the same interval and must never
// reach a golden-diffed report; the metrics layer copies it only into
// the non-golden .timing.json sidecar.
type Span struct {
	Name     string
	StartRef uint64
	EndRef   uint64
	Wall     time.Duration
}

// Spans records a job's phase spans. Begin/End are nil-safe so
// drivers can instrument unconditionally. Spans are sequential (a new
// Begin closes the open span): jobs move through phases in order
// (build → warmup → simulate), so a flat sequence is the whole story.
type Spans struct {
	done    []Span
	open    Span
	active  bool
	started time.Time
	onPhase func(name string)
}

// OnPhase registers a callback fired at every Begin with the new
// phase's name — the hook the live progress reporter hangs off.
func (s *Spans) OnPhase(fn func(name string)) {
	if s != nil {
		s.onPhase = fn
	}
}

// Begin closes any open span at ref and opens a named one. Nil-safe.
func (s *Spans) Begin(name string, ref uint64) {
	if s == nil {
		return
	}
	s.End(ref)
	s.open = Span{Name: name, StartRef: ref}
	s.active = true
	s.started = time.Now()
	if s.onPhase != nil {
		s.onPhase(name)
	}
}

// End closes the open span at ref, if one is open. Nil-safe.
func (s *Spans) End(ref uint64) {
	if s == nil || !s.active {
		return
	}
	s.open.EndRef = ref
	s.open.Wall = time.Since(s.started)
	s.done = append(s.done, s.open)
	s.active = false
}

// All returns the completed spans in begin order.
func (s *Spans) All() []Span {
	if s == nil {
		return nil
	}
	return s.done
}
