// Package telemetry is the simulator's deterministic observability
// plane: structured event tracing, fixed-bucket distribution
// histograms, and simulated-time spans, all designed so that enabling
// them never perturbs results and disabling them never costs the hot
// path an allocation.
//
// Time discipline. Every artifact that can reach a golden-diffed
// report is stamped with SIMULATED time — the job's reference index —
// never the wall clock: two runs of the same seed produce identical
// events, histograms, and span boundaries at every scheduler width.
// Wall-clock durations exist only on Span.Wall, which the metrics
// layer confines to the non-golden .timing.json sidecar.
//
// Cost discipline. Every recording method is nil-safe: a nil *Tracer,
// *Hist, *Sink, *Spans, or *Reporter receiver returns immediately, so
// instrumented code calls unconditionally and pays one predictable
// branch when telemetry is off. When tracing is ON the per-event cost
// is a few counter increments and one fixed-size ring-slot write —
// still zero heap allocations (guarded by AllocsPerRun tests).
package telemetry

// EventKind labels one structured simulator event.
type EventKind uint8

// The event vocabulary: per-level TLB activity, CoLT coalescing, page
// walks, and the OS events (THP, compaction, fault injection) that
// reshape the contiguity CoLT feeds on.
const (
	EvTLBHit EventKind = iota
	EvTLBMiss
	EvCoalesce // a fill whose coalesced run covered > 1 translation
	EvMerge    // fill-time secondary coalescing with a resident entry
	EvEvict    // capacity eviction of a valid entry
	EvPageWalk
	EvTHPPromote     // a 2 MB superpage was allocated
	EvTHPDemote      // a superpage was split back to base pages
	EvCompactMigrate // compaction moved one frame
	EvFaultInject    // the fault plane fired at a site
	numEventKinds
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvTLBHit:
		return "tlb-hit"
	case EvTLBMiss:
		return "tlb-miss"
	case EvCoalesce:
		return "coalesce"
	case EvMerge:
		return "merge"
	case EvEvict:
		return "evict"
	case EvPageWalk:
		return "page-walk"
	case EvTHPPromote:
		return "thp-promote"
	case EvTHPDemote:
		return "thp-demote"
	case EvCompactMigrate:
		return "compact-migrate"
	case EvFaultInject:
		return "fault-inject"
	}
	return "event(?)"
}

// TLB levels for hit/miss/evict events. LevelNone marks OS-side events.
const (
	LevelNone uint8 = iota
	LevelL1
	LevelL2
	LevelSup
)

// LevelName returns the display name of a TLB level code.
func LevelName(level uint8) string {
	switch level {
	case LevelL1:
		return "l1"
	case LevelL2:
		return "l2"
	case LevelSup:
		return "sup"
	}
	return "os"
}

// Event is one fixed-size structured simulator event. Ref is the
// simulated timestamp (the job's reference index at emission); Arg and
// Arg2 are kind-specific payloads (see EXPERIMENTS.md for the schema).
type Event struct {
	Kind  EventKind
	TID   uint8 // emitting thread: 0 = OS, 1..n = TLB variants
	Level uint8 // TLB level for hit/miss/evict, else LevelNone
	Ref   uint64
	Arg   uint64
	Arg2  uint64
}

// Default per-kind sampling strides: high-frequency events keep one in
// every strideN emissions (deterministically, by per-kind ordinal —
// never randomly, so traces are identical across runs and widths).
// Rare events are never sampled out. Totals in Counts() include the
// sampled-out emissions.
const (
	strideHit  = 64
	strideMiss = 16
	strideWalk = 4
)

// Tracer is a bounded, deterministically sampled ring buffer of
// events. When the ring wraps, the oldest events are overwritten: the
// exported trace is the tail of the run, which is where steady-state
// behavior (the paper's object of study) lives. The zero value is not
// useful; use NewTracer. A nil *Tracer is a valid disabled tracer.
type Tracer struct {
	ring    []Event
	next    int    // next ring slot to write
	stored  uint64 // events ever written to the ring
	now     uint64 // current simulated time (reference index)
	seen    [numEventKinds]uint64
	strides [numEventKinds]uint64
}

// DefaultTraceCap bounds one job's event ring: 64K events keep a trace
// file in the few-MB range even with every kind enabled.
const DefaultTraceCap = 1 << 16

// NewTracer returns a tracer holding at most capacity events (<= 0
// selects DefaultTraceCap), with the default sampling strides.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	t := &Tracer{ring: make([]Event, 0, capacity)}
	for k := range t.strides {
		t.strides[k] = 1
	}
	t.strides[EvTLBHit] = strideHit
	t.strides[EvTLBMiss] = strideMiss
	t.strides[EvPageWalk] = strideWalk
	return t
}

// SetStride overrides kind's sampling stride (n <= 1 keeps every
// event). Sampling stays deterministic: the kept events are those with
// per-kind ordinal ≡ 0 (mod n).
func (t *Tracer) SetStride(kind EventKind, n uint64) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.strides[kind] = n
}

// SetNow advances the tracer's simulated clock; subsequent events are
// stamped with ref. Drivers call this once per reference.
func (t *Tracer) SetNow(ref uint64) {
	if t != nil {
		t.now = ref
	}
}

// Now returns the current simulated timestamp.
func (t *Tracer) Now() uint64 {
	if t == nil {
		return 0
	}
	return t.now
}

// Emit records one event (subject to the kind's sampling stride) at
// the current simulated time. Safe to call on a nil tracer; never
// allocates.
func (t *Tracer) Emit(kind EventKind, tid, level uint8, arg, arg2 uint64) {
	if t == nil {
		return
	}
	ord := t.seen[kind]
	t.seen[kind]++
	if s := t.strides[kind]; s > 1 && ord%s != 0 {
		return
	}
	ev := Event{Kind: kind, TID: tid, Level: level, Ref: t.now, Arg: arg, Arg2: arg2}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
	} else {
		t.ring[t.next] = ev
	}
	t.next++
	if t.next == cap(t.ring) {
		t.next = 0
	}
	t.stored++
}

// Events returns the retained events oldest-first. The slice is a
// fresh copy; the tracer can keep recording.
func (t *Tracer) Events() []Event {
	if t == nil || t.stored == 0 {
		return nil
	}
	if len(t.ring) < cap(t.ring) {
		return append([]Event(nil), t.ring...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Seen returns how many events of kind were emitted, including those
// sampled out or overwritten by ring wrap.
func (t *Tracer) Seen(kind EventKind) uint64 {
	if t == nil {
		return 0
	}
	return t.seen[kind]
}

// Dropped returns how many retained-eligible events were overwritten
// by ring wrap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.stored - uint64(len(t.ring))
}
