package telemetry

import "math/bits"

// HistBuckets is the fixed bucket count of a log2 histogram: bucket 0
// holds v == 0 and bucket i (1..63) holds values with bit length i,
// i.e. v in [2^(i-1), 2^i). 64-bit values always fit: bits.Len64
// never exceeds 64, and the top bucket absorbs the clamp.
const HistBuckets = 65

// Hist is a fixed-bucket log2 histogram. Observing is allocation-free
// and a nil *Hist is a valid disabled histogram, so hot paths can
// observe unconditionally. The zero value is ready to use.
type Hist struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets [HistBuckets]uint64
}

// Observe adds one sample. Nil-safe; never allocates.
func (h *Hist) Observe(v uint64) {
	if h == nil {
		return
	}
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[bits.Len64(v)]++
}

// Merge folds other into h. Nil-safe on both sides.
func (h *Hist) Merge(other *Hist) {
	if h == nil || other == nil {
		return
	}
	h.Count += other.Count
	h.Sum += other.Sum
	if other.Max > h.Max {
		h.Max = other.Max
	}
	for i := range h.Buckets {
		h.Buckets[i] += other.Buckets[i]
	}
}

// Mean returns the average observed value, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h == nil || h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// BucketLo returns the smallest value that lands in bucket i.
func BucketLo(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}
