// Package perf implements the paper's performance-interpolation
// methodology (§5.2.1): rather than full microarchitectural simulation,
// runtime is modeled as base execution cycles of a 4-wide out-of-order
// core, plus partially-overlapped memory-stall cycles, plus page-walk
// cycles charged serially — the paper's own justification being that
// "TLB miss penalties (page walks) are serialized as only one page walk
// can typically be handled at a time. Hence, TLB misses lie on the
// execution's critical path."
package perf

import "colt/internal/stats"

// Model holds the interpolation parameters.
type Model struct {
	// BaseCPI is the core's cycles-per-instruction assuming perfect
	// caches and TLBs (a 4-wide OoO machine sustains less than its
	// peak width on real code).
	BaseCPI float64
	// MemOverlap is the fraction of data-cache stall cycles NOT hidden
	// by out-of-order execution (0 = fully hidden, 1 = fully exposed).
	// A 128-entry ROB hides a substantial share of L2/LLC-hit stalls.
	MemOverlap float64
}

// Default returns the model used by the experiments: a 4-wide core
// sustaining IPC 2.5 on compute, with 30% of memory stalls exposed.
func Default() Model {
	return Model{BaseCPI: 0.4, MemOverlap: 0.3}
}

// Run is one measured execution: instruction count plus the two stall
// totals accumulated by the simulators.
type Run struct {
	Instructions uint64
	// MemStallCycles is the sum over data references of latency beyond
	// an L1 hit.
	MemStallCycles uint64
	// WalkCycles is the total serialized page-walk latency (from
	// core.Stats.WalkCycles).
	WalkCycles uint64
}

// Cycles returns the modeled runtime.
func (m Model) Cycles(r Run) float64 {
	return float64(r.Instructions)*m.BaseCPI +
		m.MemOverlap*float64(r.MemStallCycles) +
		float64(r.WalkCycles)
}

// PerfectTLBCycles returns the runtime with a 100%-hit TLB: identical
// except no walk cycles.
func (m Model) PerfectTLBCycles(r Run) float64 {
	return m.Cycles(Run{Instructions: r.Instructions, MemStallCycles: r.MemStallCycles})
}

// Improvement returns the percentage speedup of the candidate run over
// the baseline run: 100 * (T_base/T_cand - 1). This is the quantity
// Figure 21 plots. The degenerate case of a zero-cycle candidate run
// is defined as 0 (no measurable improvement), never ±Inf — these
// values are serialized to JSON, which admits no non-finite numbers.
func (m Model) Improvement(baseline, candidate Run) float64 {
	tb, tc := m.Cycles(baseline), m.Cycles(candidate)
	if tc == 0 {
		return 0
	}
	return 100 * (tb - tc) / tc
}

// PerfectImprovement returns the speedup a perfect TLB would give over
// the baseline run (Figure 21's "Perfect" bars).
func (m Model) PerfectImprovement(baseline Run) float64 {
	tp := m.PerfectTLBCycles(baseline)
	if tp == 0 {
		return 0
	}
	return 100 * (m.Cycles(baseline) - tp) / tp
}

// WalkStallFraction returns the share of modeled runtime spent in page
// walks, a useful diagnostic for which benchmarks are translation-bound.
func (m Model) WalkStallFraction(r Run) float64 {
	t := m.Cycles(r)
	if t == 0 {
		return 0
	}
	return float64(r.WalkCycles) / t
}

// MPMI converts an event count to events-per-million-instructions,
// Table 1's metric.
func MPMI(events, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(events) * 1e6 / float64(instructions)
}

// AverageImprovement aggregates per-benchmark improvements the way the
// paper reports averages (arithmetic mean of percentages).
func AverageImprovement(vals []float64) float64 {
	var s stats.Summary
	for _, v := range vals {
		s.Add(v)
	}
	return s.Mean()
}
