package perf

import (
	"math"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCycles(t *testing.T) {
	m := Model{BaseCPI: 0.5, MemOverlap: 0.5}
	r := Run{Instructions: 1000, MemStallCycles: 200, WalkCycles: 100}
	want := 1000*0.5 + 0.5*200 + 100
	if got := m.Cycles(r); !almost(got, want) {
		t.Fatalf("Cycles = %v, want %v", got, want)
	}
	if got := m.PerfectTLBCycles(r); !almost(got, want-100) {
		t.Fatalf("PerfectTLBCycles = %v", got)
	}
}

func TestImprovement(t *testing.T) {
	m := Default()
	base := Run{Instructions: 1_000_000, WalkCycles: 400_000}
	half := Run{Instructions: 1_000_000, WalkCycles: 200_000}
	imp := m.Improvement(base, half)
	if imp <= 0 {
		t.Fatalf("improvement = %v", imp)
	}
	// Identical runs: zero improvement.
	if !almost(m.Improvement(base, base), 0) {
		t.Fatal("self-improvement nonzero")
	}
	// Perfect >= any partial improvement.
	if m.PerfectImprovement(base) < imp {
		t.Fatal("perfect TLB worse than CoLT")
	}
	// A slower candidate yields negative improvement.
	worse := Run{Instructions: 1_000_000, WalkCycles: 800_000}
	if m.Improvement(base, worse) >= 0 {
		t.Fatal("regression not negative")
	}
}

func TestImprovementDegenerate(t *testing.T) {
	m := Default()
	if m.Improvement(Run{}, Run{}) != 0 {
		t.Fatal("zero-cycle improvement")
	}
	if m.PerfectImprovement(Run{}) != 0 {
		t.Fatal("zero-cycle perfect improvement")
	}
	// A zero-cycle candidate against a real baseline must return the
	// defined degenerate value 0 — never +Inf. These values are
	// serialized to JSON by the metrics layer, which rejects Inf/NaN.
	base := Run{Instructions: 1000, MemStallCycles: 200, WalkCycles: 300}
	if got := m.Improvement(base, Run{}); got != 0 {
		t.Fatalf("zero-cycle candidate improvement = %v, want 0", got)
	}
	for _, r := range []Run{{}, base, {WalkCycles: 7}} {
		for _, v := range []float64{
			m.Improvement(base, r), m.Improvement(r, base), m.Improvement(r, r),
			m.PerfectImprovement(r), m.WalkStallFraction(r), MPMI(r.WalkCycles, r.Instructions),
		} {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				t.Fatalf("degenerate run %+v produced non-finite value %v", r, v)
			}
		}
	}
}

func TestWalkStallFraction(t *testing.T) {
	m := Model{BaseCPI: 1, MemOverlap: 0}
	r := Run{Instructions: 100, WalkCycles: 100}
	if !almost(m.WalkStallFraction(r), 0.5) {
		t.Fatalf("WalkStallFraction = %v", m.WalkStallFraction(r))
	}
	if m.WalkStallFraction(Run{}) != 0 {
		t.Fatal("empty run fraction")
	}
}

func TestMPMI(t *testing.T) {
	if !almost(MPMI(500, 1_000_000), 500) {
		t.Fatalf("MPMI = %v", MPMI(500, 1_000_000))
	}
	if !almost(MPMI(3, 2_000_000), 1.5) {
		t.Fatalf("MPMI = %v", MPMI(3, 2_000_000))
	}
	if MPMI(5, 0) != 0 {
		t.Fatal("MPMI with zero instructions")
	}
}

func TestAverageImprovement(t *testing.T) {
	if !almost(AverageImprovement([]float64{10, 20}), 15) {
		t.Fatal("average wrong")
	}
	if AverageImprovement(nil) != 0 {
		t.Fatal("empty average")
	}
}

func TestDefaultModelSane(t *testing.T) {
	m := Default()
	if m.BaseCPI <= 0 || m.BaseCPI > 1 || m.MemOverlap < 0 || m.MemOverlap > 1 {
		t.Fatalf("Default = %+v", m)
	}
}
