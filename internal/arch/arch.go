// Package arch defines the architectural vocabulary shared by every layer
// of the CoLT simulator: virtual/physical page numbers, page-size
// constants for an x86-64-style machine, page-table-entry attributes, and
// address-manipulation helpers.
//
// The package has no dependencies so that the memory manager, page
// tables, TLBs, and workload generators can all speak the same types
// without import cycles.
package arch

import "fmt"

// Page-size geometry for a 4 KB base page / 2 MB superpage machine.
const (
	// PageShift is log2 of the base page size.
	PageShift = 12
	// PageSize is the base page size in bytes (4 KB).
	PageSize = 1 << PageShift
	// HugePageShift is log2 of the superpage size.
	HugePageShift = 21
	// HugePageSize is the superpage size in bytes (2 MB).
	HugePageSize = 1 << HugePageShift
	// PagesPerHuge is the number of base pages per superpage (512).
	PagesPerHuge = 1 << (HugePageShift - PageShift)

	// PTESize is the size of one page-table entry in bytes.
	PTESize = 8
	// CacheLineSize is the memory-system line size in bytes.
	CacheLineSize = 64
	// PTEsPerLine is how many PTEs one cache line holds. A page-table
	// walk that fetches the line containing the requested PTE therefore
	// exposes this many candidate translations to the coalescing logic
	// for free (CoLT §4.1.4).
	PTEsPerLine = CacheLineSize / PTESize
)

// VPN is a virtual page number: a virtual address right-shifted by
// PageShift.
type VPN uint64

// PFN is a physical frame number: a physical address right-shifted by
// PageShift.
type PFN uint64

// VAddr is a full virtual byte address.
type VAddr uint64

// PAddr is a full physical byte address.
type PAddr uint64

// Page converts a virtual address to its containing virtual page number.
func (a VAddr) Page() VPN { return VPN(a >> PageShift) }

// Offset returns the byte offset of the address within its page.
func (a VAddr) Offset() uint64 { return uint64(a) & (PageSize - 1) }

// Addr returns the first byte address of the virtual page.
func (v VPN) Addr() VAddr { return VAddr(v) << PageShift }

// Addr returns the first byte address of the physical frame.
func (p PFN) Addr() PAddr { return PAddr(p) << PageShift }

// Line returns the physical cache-line index of the address.
func (p PAddr) Line() uint64 { return uint64(p) / CacheLineSize }

// Attr holds the page attribute and permission bits carried by a PTE.
// CoLT coalesces only translations whose attributes match exactly
// (paper §5.1.1), so Attr must be comparable.
type Attr uint8

// Attribute bits, modeled on the x86-64 PTE flag set that matters for
// coalescing decisions.
const (
	AttrPresent Attr = 1 << iota
	AttrWritable
	AttrUser
	AttrAccessed
	AttrDirty
	AttrGlobal
	AttrNoExec
	AttrFileBacked // file-backed (not anonymous) mapping; never a THP candidate
)

// Has reports whether every bit in mask is set.
func (a Attr) Has(mask Attr) bool { return a&mask == mask }

// String renders the attribute bits in a compact rwxd-style form.
func (a Attr) String() string {
	buf := make([]byte, 0, 8)
	put := func(bit Attr, c byte) {
		if a.Has(bit) {
			buf = append(buf, c)
		} else {
			buf = append(buf, '-')
		}
	}
	put(AttrPresent, 'p')
	put(AttrWritable, 'w')
	put(AttrUser, 'u')
	put(AttrAccessed, 'a')
	put(AttrDirty, 'd')
	put(AttrGlobal, 'g')
	put(AttrNoExec, 'n')
	put(AttrFileBacked, 'f')
	return string(buf)
}

// PTE is a leaf page-table entry: one virtual-to-physical translation
// plus its attributes. Huge marks a 2 MB superpage mapping, in which
// case PFN is the first frame of a 512-frame aligned block.
type PTE struct {
	PFN  PFN
	Attr Attr
	Huge bool
}

// Present reports whether the entry maps a page.
func (e PTE) Present() bool { return e.Attr.Has(AttrPresent) }

// String implements fmt.Stringer.
func (e PTE) String() string {
	kind := "4K"
	if e.Huge {
		kind = "2M"
	}
	return fmt.Sprintf("PTE{pfn=%d %s attr=%s}", e.PFN, kind, e.Attr)
}

// Translation pairs a virtual page with its leaf PTE; the unit the
// coalescing logic and contiguity scanner operate on.
type Translation struct {
	VPN VPN
	PTE PTE
}

// ContiguousWith reports whether the receiver and next form a
// CoLT-coalescible pair: consecutive virtual pages mapped to consecutive
// physical frames with identical attributes (paper §3.1 plus the §5.1.1
// same-attribute restriction). Superpage entries never coalesce with
// base pages.
func (t Translation) ContiguousWith(next Translation) bool {
	return !t.PTE.Huge && !next.PTE.Huge &&
		t.PTE.Present() && next.PTE.Present() &&
		next.VPN == t.VPN+1 &&
		next.PTE.PFN == t.PTE.PFN+1 &&
		next.PTE.Attr == t.PTE.Attr
}
