package arch

import (
	"testing"
	"testing/quick"
)

func TestPageGeometry(t *testing.T) {
	if PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", PageSize)
	}
	if HugePageSize != 2<<20 {
		t.Fatalf("HugePageSize = %d, want 2MiB", HugePageSize)
	}
	if PagesPerHuge != 512 {
		t.Fatalf("PagesPerHuge = %d, want 512", PagesPerHuge)
	}
	if PTEsPerLine != 8 {
		t.Fatalf("PTEsPerLine = %d, want 8", PTEsPerLine)
	}
}

func TestVAddrPageRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := VAddr(raw)
		v := a.Page()
		back := v.Addr()
		return uint64(back) == raw-a.Offset() && a.Offset() < PageSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPFNAddr(t *testing.T) {
	if PFN(3).Addr() != 3*PageSize {
		t.Fatalf("PFN(3).Addr() = %d", PFN(3).Addr())
	}
	if PAddr(128).Line() != 2 {
		t.Fatalf("PAddr(128).Line() = %d, want 2", PAddr(128).Line())
	}
}

func TestAttrHas(t *testing.T) {
	a := AttrPresent | AttrWritable
	if !a.Has(AttrPresent) || !a.Has(AttrWritable) || !a.Has(AttrPresent|AttrWritable) {
		t.Fatal("Has failed for set bits")
	}
	if a.Has(AttrDirty) || a.Has(AttrPresent|AttrDirty) {
		t.Fatal("Has true for unset bits")
	}
}

func TestAttrString(t *testing.T) {
	got := (AttrPresent | AttrDirty).String()
	want := "p---d---"
	if got != want {
		t.Fatalf("Attr.String() = %q, want %q", got, want)
	}
}

func TestPTEString(t *testing.T) {
	e := PTE{PFN: 7, Attr: AttrPresent, Huge: true}
	if got := e.String(); got != "PTE{pfn=7 2M attr=p-------}" {
		t.Fatalf("unexpected String: %q", got)
	}
	if !e.Present() {
		t.Fatal("entry with AttrPresent not Present")
	}
	if (PTE{}).Present() {
		t.Fatal("zero PTE reported present")
	}
}

func TestContiguousWith(t *testing.T) {
	base := Translation{VPN: 10, PTE: PTE{PFN: 100, Attr: AttrPresent | AttrWritable}}
	cases := []struct {
		name string
		next Translation
		want bool
	}{
		{"contiguous", Translation{11, PTE{PFN: 101, Attr: AttrPresent | AttrWritable}}, true},
		{"vpn gap", Translation{12, PTE{PFN: 101, Attr: AttrPresent | AttrWritable}}, false},
		{"pfn gap", Translation{11, PTE{PFN: 102, Attr: AttrPresent | AttrWritable}}, false},
		{"attr mismatch", Translation{11, PTE{PFN: 101, Attr: AttrPresent}}, false},
		{"next not present", Translation{11, PTE{PFN: 101}}, false},
		{"next huge", Translation{11, PTE{PFN: 101, Attr: AttrPresent | AttrWritable, Huge: true}}, false},
		{"backwards", Translation{9, PTE{PFN: 99, Attr: AttrPresent | AttrWritable}}, false},
	}
	for _, c := range cases {
		if got := base.ContiguousWith(c.next); got != c.want {
			t.Errorf("%s: ContiguousWith = %v, want %v", c.name, got, c.want)
		}
	}
	huge := Translation{VPN: 10, PTE: PTE{PFN: 100, Attr: AttrPresent, Huge: true}}
	if huge.ContiguousWith(Translation{11, PTE{PFN: 101, Attr: AttrPresent}}) {
		t.Fatal("huge base page should not coalesce")
	}
}
