package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colt/internal/workload"
)

func TestGenerateRejectsBadRefs(t *testing.T) {
	for _, refs := range []int{0, -5} {
		err := generate("Mcf", filepath.Join(t.TempDir(), "x.trace"), refs, true)
		if err == nil {
			t.Errorf("generate with refs=%d succeeded", refs)
			continue
		}
		if !strings.Contains(err.Error(), "references") {
			t.Errorf("refs=%d error %q does not mention references", refs, err)
		}
	}
}

func TestGenerateUnknownBenchNamesValidSet(t *testing.T) {
	err := generate("NoSuchBench", filepath.Join(t.TempDir(), "x.trace"), 100, true)
	if err == nil {
		t.Fatal("generate with unknown benchmark succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"NoSuchBench"`) {
		t.Errorf("error %q does not quote the bad benchmark", msg)
	}
	for _, want := range workload.Names() {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not list valid benchmark %q", msg, want)
		}
	}
}

func TestGenerateCreateError(t *testing.T) {
	out := filepath.Join(t.TempDir(), "no-such-dir", "x.trace")
	err := generate("Mcf", out, 100, true)
	if err == nil {
		t.Fatal("generate into a missing directory succeeded")
	}
	if !strings.Contains(err.Error(), "creating "+out) {
		t.Errorf("error %q does not wrap the create failure with the path", err)
	}
}

func TestGenerateThenDumpRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "mcf.trace")
	if err := generate("Mcf", out, 200, true); err != nil {
		t.Fatalf("generate: %v", err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	if err := dumpTrace(out, 5); err != nil {
		t.Fatalf("dumpTrace: %v", err)
	}
}

func TestDumpMissingTraceError(t *testing.T) {
	err := dumpTrace(filepath.Join(t.TempDir(), "absent.trace"), 5)
	if err == nil {
		t.Fatal("dump of missing trace succeeded")
	}
	if !strings.Contains(err.Error(), "opening trace") {
		t.Errorf("error %q does not say the trace failed to open", err)
	}
}

func TestDumpCorruptTraceError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, []byte("NOTATRACE"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := dumpTrace(path, 5)
	if err == nil {
		t.Fatal("dump of corrupt trace succeeded")
	}
	if !strings.Contains(err.Error(), "reading trace") {
		t.Errorf("error %q does not say the trace failed to parse", err)
	}
}

func TestDumpRejectsBadN(t *testing.T) {
	for _, n := range []int{0, -1} {
		if err := dumpTrace("irrelevant", n); err == nil {
			t.Errorf("dumpTrace with n=%d succeeded", n)
		}
	}
}
