// Command tracegen builds a benchmark's memory in the simulated system
// and writes its reference stream to a binary trace file (the
// simulator's equivalent of the paper's Simics-derived traces), which
// can be replayed by external tooling or inspected with -dump.
//
// Usage:
//
//	tracegen -bench Mcf -o mcf.trace [-refs N] [-quick]
//	tracegen -dump mcf.trace [-n 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"colt/internal/experiments"
	"colt/internal/rng"
	"colt/internal/trace"
	"colt/internal/vm"
	"colt/internal/workload"
)

func main() {
	var (
		bench = flag.String("bench", "Mcf", "benchmark name")
		out   = flag.String("o", "", "output trace file (required unless -dump)")
		refs  = flag.Int("refs", 1_000_000, "references to record")
		quick = flag.Bool("quick", false, "small fast run")
		dump  = flag.String("dump", "", "dump an existing trace file instead of generating")
		n     = flag.Int("n", 20, "records to print when dumping")
	)
	flag.Parse()

	if *dump != "" {
		if err := dumpTrace(*dump, *n); err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -o is required")
		os.Exit(1)
	}
	if err := generate(*bench, *out, *refs, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func generate(bench, out string, refs int, quick bool) error {
	if refs <= 0 {
		return fmt.Errorf("references must be positive, got %d", refs)
	}
	spec, err := workload.ByName(bench)
	if err != nil {
		return err
	}
	opts := experiments.DefaultOptions()
	if quick {
		opts = experiments.QuickOptions()
	}
	sys := vm.NewSystem(vm.Config{Frames: opts.Frames, THP: true})
	master := rng.New(opts.Seed)
	if _, err := vm.BackgroundChurn(sys, opts.ChurnOps, master.Stream("churn")); err != nil {
		return err
	}
	proc, err := sys.NewProcess()
	if err != nil {
		return err
	}
	w, err := workload.Build(spec.Scale(opts.Scale), proc, master.Stream("workload"))
	if err != nil {
		return fmt.Errorf("building %s: %w", bench, err)
	}
	var tr trace.Trace
	for i := 0; i < refs; i++ {
		va, write, gap := w.Next()
		tr.Append(trace.Record{VAddr: va, Write: write, InstGap: uint32(gap)})
	}
	f, err := os.Create(out)
	if err != nil {
		return fmt.Errorf("creating %s: %w", out, err)
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		return fmt.Errorf("writing %s: %w", out, err)
	}
	fmt.Printf("wrote %d references (%d instructions) for %s to %s\n",
		tr.Len(), tr.Instructions(), bench, out)
	return nil
}

func dumpTrace(path string, n int) error {
	if n <= 0 {
		return fmt.Errorf("-n must be positive, got %d", n)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("opening trace: %w", err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return fmt.Errorf("reading trace %s: %w", path, err)
	}
	fmt.Printf("%d records, %d instructions\n", tr.Len(), tr.Instructions())
	count := 0
	tr.Replay(func(r trace.Record) bool {
		kind := "R"
		if r.Write {
			kind = "W"
		}
		fmt.Printf("%s %#014x +%d\n", kind, uint64(r.VAddr), r.InstGap)
		count++
		return count < n
	})
	return nil
}
