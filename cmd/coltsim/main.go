// Command coltsim runs one benchmark under a chosen kernel
// configuration and reports miss rates, eliminations, and modeled
// speedups for the baseline and the three CoLT designs.
//
// Usage:
//
//	coltsim -bench Mcf [-ths=false] [-lowcompaction] [-memhog 25] [-refs N] [-quick]
//
// Invalid flag values (unknown benchmark, out-of-range -memhog,
// negative -refs) exit with status 2 and an error naming the valid
// set; simulation failures exit with status 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"colt"
)

func main() {
	var (
		bench   = flag.String("bench", "Mcf", "benchmark name (see -list)")
		list    = flag.Bool("list", false, "list benchmark names and exit")
		ths     = flag.Bool("ths", true, "enable transparent hugepage support")
		lowComp = flag.Bool("lowcompaction", false, "reduce memory compaction (defrag off)")
		memhog  = flag.Int("memhog", 0, "memhog percentage (0-94; the paper uses 0, 25, 50)")
		refs    = flag.Int("refs", 0, "measured references (default full run)")
		quick   = flag.Bool("quick", false, "small fast run")
	)
	flag.Parse()

	if *list {
		for _, b := range colt.Benchmarks() {
			fmt.Println(b)
		}
		return
	}

	opts := colt.DefaultOptions()
	if *quick {
		opts = colt.QuickOptions()
	}
	kernel := colt.KernelConfig{THP: *ths, LowCompaction: *lowComp, MemhogPct: *memhog}
	if err := validate(*bench, kernel, *refs); err != nil {
		fmt.Fprintln(os.Stderr, "coltsim:", err)
		os.Exit(2)
	}
	if *refs > 0 {
		opts.References = *refs
		opts.Warmup = *refs / 10
	}
	if err := run(*bench, kernel, opts); err != nil {
		fmt.Fprintln(os.Stderr, "coltsim:", err)
		os.Exit(1)
	}
}

// validate checks the flag-derived configuration, returning errors
// that name the offending flag and the valid set.
func validate(bench string, kernel colt.KernelConfig, refs int) error {
	if kernel.MemhogPct < 0 || kernel.MemhogPct >= 95 {
		return fmt.Errorf("-memhog %d%% is out of range [0, 95); the paper uses 0, 25, and 50", kernel.MemhogPct)
	}
	if refs < 0 {
		return fmt.Errorf("-refs must be >= 0, got %d", refs)
	}
	if !knownBench(bench) {
		return fmt.Errorf("unknown benchmark %q (known: %s)", bench, strings.Join(colt.Benchmarks(), ", "))
	}
	return nil
}

// knownBench reports whether name is one of the paper's benchmarks.
func knownBench(name string) bool {
	for _, b := range colt.Benchmarks() {
		if b == name {
			return true
		}
	}
	return false
}

// run simulates the benchmark and prints the per-policy table.
func run(bench string, kernel colt.KernelConfig, opts colt.Options) error {
	rep, err := colt.RunBenchmark(bench, kernel, opts, colt.AllPolicies())
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d instructions, avg contiguity %.1f pages, perfect-TLB speedup %.1f%%\n\n",
		rep.Bench, rep.Instructions, rep.AvgContiguity, rep.PerfectSpeedupPct)
	fmt.Printf("%-10s %12s %12s %10s %10s %10s\n",
		"policy", "L1 MPMI", "L2 MPMI", "L1 elim%", "L2 elim%", "speedup%")
	for _, p := range rep.Policies {
		fmt.Printf("%-10s %12.0f %12.0f %10.1f %10.1f %10.1f\n",
			p.Policy, p.L1MPMI, p.L2MPMI, p.L1Eliminated, p.L2Eliminated, p.SpeedupPct)
	}
	return nil
}
