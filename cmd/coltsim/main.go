// Command coltsim runs one benchmark under a chosen kernel
// configuration and reports miss rates, eliminations, and modeled
// speedups for the baseline and the three CoLT designs.
//
// Usage:
//
//	coltsim -bench Mcf [-ths=false] [-lowcompaction] [-memhog 25] [-refs N] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"colt"
)

func main() {
	var (
		bench   = flag.String("bench", "Mcf", "benchmark name (see -list)")
		list    = flag.Bool("list", false, "list benchmark names and exit")
		ths     = flag.Bool("ths", true, "enable transparent hugepage support")
		lowComp = flag.Bool("lowcompaction", false, "reduce memory compaction (defrag off)")
		memhog  = flag.Int("memhog", 0, "memhog percentage (0, 25, 50)")
		refs    = flag.Int("refs", 0, "measured references (default full run)")
		quick   = flag.Bool("quick", false, "small fast run")
	)
	flag.Parse()

	if *list {
		for _, b := range colt.Benchmarks() {
			fmt.Println(b)
		}
		return
	}

	opts := colt.DefaultOptions()
	if *quick {
		opts = colt.QuickOptions()
	}
	if *refs > 0 {
		opts.References = *refs
		opts.Warmup = *refs / 10
	}
	kernel := colt.KernelConfig{THP: *ths, LowCompaction: *lowComp, MemhogPct: *memhog}

	rep, err := colt.RunBenchmark(*bench, kernel, opts, colt.AllPolicies())
	if err != nil {
		fmt.Fprintln(os.Stderr, "coltsim:", err)
		os.Exit(1)
	}

	fmt.Printf("%s: %d instructions, avg contiguity %.1f pages, perfect-TLB speedup %.1f%%\n\n",
		rep.Bench, rep.Instructions, rep.AvgContiguity, rep.PerfectSpeedupPct)
	fmt.Printf("%-10s %12s %12s %10s %10s %10s\n",
		"policy", "L1 MPMI", "L2 MPMI", "L1 elim%", "L2 elim%", "speedup%")
	for _, p := range rep.Policies {
		fmt.Printf("%-10s %12.0f %12.0f %10.1f %10.1f %10.1f\n",
			p.Policy, p.L1MPMI, p.L2MPMI, p.L1Eliminated, p.L2Eliminated, p.SpeedupPct)
	}
}
