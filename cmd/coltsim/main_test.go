package main

import (
	"strings"
	"testing"

	"colt"
)

func TestValidateRejectsBadMemhog(t *testing.T) {
	for _, pct := range []int{-1, 95, 200} {
		kernel := colt.DefaultKernel()
		kernel.MemhogPct = pct
		err := validate("Mcf", kernel, 0)
		if err == nil {
			t.Errorf("validate with memhog=%d succeeded", pct)
			continue
		}
		if !strings.Contains(err.Error(), "-memhog") {
			t.Errorf("memhog=%d error %q does not mention the flag", pct, err)
		}
	}
}

func TestValidateRejectsNegativeRefs(t *testing.T) {
	err := validate("Mcf", colt.DefaultKernel(), -1)
	if err == nil {
		t.Fatal("validate with refs=-1 succeeded")
	}
	if !strings.Contains(err.Error(), "-refs") {
		t.Errorf("error %q does not mention -refs", err)
	}
}

func TestValidateUnknownBenchNamesValidSet(t *testing.T) {
	err := validate("NoSuchBench", colt.DefaultKernel(), 0)
	if err == nil {
		t.Fatal("validate with unknown benchmark succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"NoSuchBench"`) {
		t.Errorf("error %q does not quote the bad benchmark", msg)
	}
	for _, want := range colt.Benchmarks() {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not list valid benchmark %q", msg, want)
		}
	}
}

func TestValidateAcceptsPaperConfigs(t *testing.T) {
	for _, pct := range []int{0, 25, 50} {
		kernel := colt.DefaultKernel()
		kernel.MemhogPct = pct
		if err := validate("Mcf", kernel, 0); err != nil {
			t.Errorf("validate rejected the paper's memhog=%d: %v", pct, err)
		}
	}
}

func TestRunSingleBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full workload image")
	}
	opts := colt.QuickOptions()
	if err := run("Mcf", colt.DefaultKernel(), opts); err != nil {
		t.Fatalf("run: %v", err)
	}
}
