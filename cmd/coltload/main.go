// Command coltload is the serving-path load generator: it drives a
// coltd daemon with a zipf-skewed stream of job submissions and
// reports served latency percentiles, goodput, refusal counts, and
// cache/coalesce hit rates — the BENCH_serve.json trajectory numbers
// (make bench-serve; EXPERIMENTS.md documents the schema and
// methodology).
//
// Two targets: -addr points it at a running daemon; with no -addr it
// self-hosts a server in-process on an ephemeral port (the hermetic
// mode the benchmark script uses, so a bench run measures exactly one
// build's serving stack). Two loops: closed (default; each of
// -clients issues its next request when the previous finishes) and
// open (-rate R dispatches R arrivals/sec regardless of completions).
// The spec universe is -specs variants of one template spec differing
// only in seed, with popularity zipf(-zipf-s): item 0 is the hot key.
// Every sampler is seeded from -seed via internal/rng streams, so a
// run's request sequences are deterministic.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"colt/internal/loadgen"
	"colt/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "", "target daemon base URL (e.g. http://127.0.0.1:8077); empty self-hosts a server in-process")
		addrs    = flag.String("addrs", "", "comma-separated base URLs of a coltd fleet; submissions round-robin across them and the summary gains a per-node breakdown (overrides -addr)")
		clients  = flag.Int("clients", 16, "closed-loop concurrency")
		rate     = flag.Float64("rate", 0, "open-loop arrival rate in req/s (0 = closed loop)")
		duration = flag.Duration("duration", 5*time.Second, "measured window")
		requests = flag.Int("requests", 0, "optional total-request cap (0 = duration-bounded only)")
		specs    = flag.Int("specs", 64, "spec-universe size (distinct content hashes)")
		zipfS    = flag.Float64("zipf-s", 1.1, "zipf popularity exponent (0 = uniform)")
		seed     = flag.Uint64("seed", 1, "root seed for the deterministic samplers")
		expName  = flag.String("experiment", "table1", "experiment submitted by every spec")
		refs     = flag.Int("refs", 2000, "measured references per spec (small: the bench measures serving, not simulating)")
		prewarm  = flag.Bool("prewarm", true, "submit every spec once before measuring, so the window exercises the cache/coalesce hot paths")
		poll     = flag.Duration("poll", time.Millisecond, "job-status poll interval")
		retryMax = flag.Int("retry-max", 4, "503 retries per request before counting it refused (-1 disables)")
		retryBas = flag.Duration("retry-base", 25*time.Millisecond, "first-retry backoff; doubles per attempt with deterministic jitter")
		retryCap = flag.Duration("retry-cap", time.Second, "backoff ceiling (also clamps the server's Retry-After hint)")
		stats    = flag.Duration("stats-poll", 0, "add a monitoring client that GETs /v1/stats on this period (0 = off)")
		outPath  = flag.String("out", "", "write the JSON summary to this file (default stdout)")
		commit   = flag.String("commit", "", "commit hash recorded in the summary")
		slowestN = flag.Int("slowest", 5, "record the N slowest requests' trace IDs in the summary (0 = off)")

		// Self-host sizing (ignored with -addr).
		shWorkers = flag.Int("workers", 2, "self-host: concurrent simulations")
		shQueue   = flag.Int("queue", 64, "self-host: job queue depth")
		shCache   = flag.String("cache-dir", "", "self-host: cache directory (empty = fresh temp dir)")

		// Pre-PR comparison, filled in by the bench script when a
		// baseline measurement exists (see EXPERIMENTS.md).
		preP99     = flag.Float64("prepr-p99-ms", 0, "baseline p99 ms from the pre-PR build (0 = unrecorded)")
		preGoodput = flag.Float64("prepr-goodput-rps", 0, "baseline goodput from the pre-PR build (0 = unrecorded)")
	)
	flag.Parse()

	if err := validate(*clients, *rate, *duration, *requests, *specs, *zipfS, *refs, *poll, *retryBas, *retryCap); err != nil {
		fmt.Fprintln(os.Stderr, "coltload:", err)
		flag.Usage()
		os.Exit(2)
	}
	addrList, err := parseAddrs(*addrs, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coltload:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(config{
		addr: *addr, addrs: addrList, clients: *clients, rate: *rate, duration: *duration,
		requests: *requests, specs: *specs, zipfS: *zipfS, seed: *seed,
		experiment: *expName, refs: *refs, prewarm: *prewarm, poll: *poll, statsPoll: *stats,
		retryMax: *retryMax, retryBase: *retryBas, retryCap: *retryCap,
		out: *outPath, commit: *commit, slowest: *slowestN,
		shWorkers: *shWorkers, shQueue: *shQueue, shCache: *shCache,
		preP99: *preP99, preGoodput: *preGoodput,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "coltload:", err)
		os.Exit(1)
	}
}

// validate rejects nonsensical flags before anything runs, naming the
// offending flag.
func validate(clients int, rate float64, duration time.Duration, requests, specs int, zipfS float64, refs int, poll, retryBase, retryCap time.Duration) error {
	if clients < 1 {
		return fmt.Errorf("-clients must be >= 1, got %d", clients)
	}
	if rate < 0 {
		return fmt.Errorf("-rate must be >= 0, got %g", rate)
	}
	if duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", duration)
	}
	if requests < 0 {
		return fmt.Errorf("-requests must be >= 0, got %d", requests)
	}
	if specs < 1 {
		return fmt.Errorf("-specs must be >= 1, got %d", specs)
	}
	if zipfS < 0 {
		return fmt.Errorf("-zipf-s must be >= 0, got %g", zipfS)
	}
	if refs < 1 {
		return fmt.Errorf("-refs must be >= 1, got %d", refs)
	}
	if poll <= 0 {
		return fmt.Errorf("-poll must be positive, got %v", poll)
	}
	if retryBase <= 0 {
		return fmt.Errorf("-retry-base must be positive, got %v", retryBase)
	}
	if retryCap < retryBase {
		return fmt.Errorf("-retry-cap (%v) must be >= -retry-base (%v)", retryCap, retryBase)
	}
	return nil
}

// parseAddrs expands -addrs into a target list and rejects the
// ambiguous case of both -addr and -addrs.
func parseAddrs(addrs, addr string) ([]string, error) {
	if addrs == "" {
		return nil, nil
	}
	if addr != "" {
		return nil, fmt.Errorf("-addr and -addrs are mutually exclusive")
	}
	var out []string
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.HasPrefix(a, "http://") && !strings.HasPrefix(a, "https://") {
			return nil, fmt.Errorf("-addrs entry %q must be a base URL (http://host:port)", a)
		}
		out = append(out, strings.TrimRight(a, "/"))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-addrs %q names no targets", addrs)
	}
	return out, nil
}

type config struct {
	addr       string
	addrs      []string
	clients    int
	rate       float64
	duration   time.Duration
	requests   int
	specs      int
	zipfS      float64
	seed       uint64
	experiment string
	refs       int
	prewarm    bool
	poll       time.Duration
	statsPoll  time.Duration
	retryMax   int
	retryBase  time.Duration
	retryCap   time.Duration
	out        string
	commit     string
	slowest    int
	shWorkers  int
	shQueue    int
	shCache    string
	preP99     float64
	preGoodput float64
}

// slowEntry names one slow-tail request in the summary: the trace ID
// the server returned lets an operator grep coltd's structured logs
// and hit /v1/jobs/{id}/timeline for exactly that request.
type slowEntry struct {
	TraceID string  `json:"trace_id"`
	Ms      float64 `json:"ms"`
}

// nodeSummary is one fleet member's slice of a multi-node run: the
// generator-side goodput/latency it served, plus the cluster counters
// scraped from its own /metrics — how much of its traffic arrived as
// ownership proxies, peer cache fills, and steals.
type nodeSummary struct {
	Addr            string  `json:"addr"`
	GoodputRPS      float64 `json:"goodput_rps"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	Requests        int     `json:"requests"`
	Done            int     `json:"done"`
	Refused         int     `json:"refused,omitempty"`
	Errors          int     `json:"errors,omitempty"`
	ProxiedSubmits  float64 `json:"proxied_submits"`
	PeerFillOK      float64 `json:"peer_fill_ok"`
	PeerFillMiss    float64 `json:"peer_fill_miss,omitempty"`
	PeerFillCorrupt float64 `json:"peer_fill_corrupt,omitempty"`
	StealsIn        float64 `json:"steals_in"`
	StealsOut       float64 `json:"steals_out"`
}

// summary is the BENCH_serve.json schema (EXPERIMENTS.md).
type summary struct {
	P50Ms           float64       `json:"p50_ms"`
	P99Ms           float64       `json:"p99_ms"`
	P999Ms          float64       `json:"p999_ms"`
	GoodputRPS      float64       `json:"goodput_rps"`
	Requests        int           `json:"requests"`
	Accepted        int           `json:"accepted"`
	Refused         int           `json:"refused"`
	Errors          int           `json:"errors"`
	Done            int           `json:"done"`
	Retries         int           `json:"retries"`
	BackoffMs       float64       `json:"backoff_ms"`
	CacheHitRate    float64       `json:"cache_hit_rate"`
	CoalesceRate    float64       `json:"coalesce_rate"`
	ZipfS           float64       `json:"zipf_s"`
	Specs           int           `json:"specs"`
	Clients         int           `json:"clients"`
	RateRPS         float64       `json:"rate_rps,omitempty"`
	DurationS       float64       `json:"duration_s"`
	Mode            string        `json:"mode"`
	Nodes           []nodeSummary `json:"nodes,omitempty"`
	Slowest         []slowEntry   `json:"slowest,omitempty"`
	MetricsSeries   int           `json:"metrics_series,omitempty"`
	PreprP99Ms      float64       `json:"prepr_p99_ms,omitempty"`
	PreprGoodputRPS float64       `json:"prepr_goodput_rps,omitempty"`
	SpeedupGoodput  float64       `json:"speedup_goodput,omitempty"`
	SpeedupP99      float64       `json:"speedup_p99,omitempty"`
	Commit          string        `json:"commit"`
}

func run(cfg config) error {
	base := cfg.addr
	if base == "" && len(cfg.addrs) > 0 {
		base = cfg.addrs[0] // metrics scrape + self-host suppression
	}
	if base == "" {
		cacheDir := cfg.shCache
		if cacheDir == "" {
			dir, err := os.MkdirTemp("", "coltload-cache-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			cacheDir = dir
		}
		// The self-hosted bench runs with structured logging enabled —
		// the A/B numbers must price in the observability the daemon
		// ships with — but the stream goes to a buffered file (slog's
		// handler serializes writes, so one bufio.Writer is safe), the
		// way a production log shipper receives it: the bench pays for
		// encoding every line, not a synchronous syscall per admission.
		logPath := filepath.Join(cacheDir, "coltd.log.jsonl")
		logFile, err := os.Create(logPath)
		if err != nil {
			return err
		}
		logBuf := bufio.NewWriterSize(logFile, 1<<20)
		defer func() {
			logBuf.Flush()
			logFile.Close()
		}()
		s, err := server.NewServer(server.Config{
			CacheDir:   cacheDir,
			QueueDepth: cfg.shQueue,
			Workers:    cfg.shWorkers,
			Logger:     slog.New(slog.NewJSONHandler(logBuf, nil)),
		})
		if err != nil {
			return err
		}
		defer s.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: s.Handler()}
		go httpSrv.Serve(ln)
		defer httpSrv.Close()
		base = "http://" + ln.Addr().String()
		fmt.Fprintf(os.Stderr, "coltload: self-hosting on %s (workers=%d queue=%d)\n",
			base, cfg.shWorkers, cfg.shQueue)
	}

	mode := "closed"
	if cfg.rate > 0 {
		mode = "open"
	}
	if len(cfg.addrs) > 1 {
		fmt.Fprintf(os.Stderr, "coltload: round-robin across %d nodes: %s\n",
			len(cfg.addrs), strings.Join(cfg.addrs, " "))
	}
	fmt.Fprintf(os.Stderr, "coltload: %s loop, %d clients, %d specs, zipf_s=%g, %v window (prewarm=%v)\n",
		mode, cfg.clients, cfg.specs, cfg.zipfS, cfg.duration, cfg.prewarm)

	res, err := loadgen.Run(loadgen.Config{
		BaseURL:       base,
		BaseURLs:      cfg.addrs,
		Clients:       cfg.clients,
		Rate:          cfg.rate,
		Duration:      cfg.duration,
		MaxRequests:   cfg.requests,
		Specs:         cfg.specs,
		ZipfS:         cfg.zipfS,
		Seed:          cfg.seed,
		PollInterval:  cfg.poll,
		Prewarm:       cfg.prewarm,
		StatsInterval: cfg.statsPoll,
		RetryMax:      cfg.retryMax,
		RetryBase:     cfg.retryBase,
		RetryCap:      cfg.retryCap,
		Template: server.Spec{
			Experiment: cfg.experiment,
			Quick:      true,
			Refs:       cfg.refs,
			Seed:       1,
		},
	})
	if err != nil {
		return err
	}

	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	sum := summary{
		P50Ms:        ms(res.P50),
		P99Ms:        ms(res.P99),
		P999Ms:       ms(res.P999),
		GoodputRPS:   round2(res.GoodputRPS),
		Requests:     res.Requests,
		Accepted:     res.Accepted,
		Refused:      res.Refused,
		Errors:       res.Errors,
		Done:         res.Done,
		Retries:      res.Retries,
		BackoffMs:    ms(res.Backoff),
		CacheHitRate: round4(res.CacheHitRate),
		CoalesceRate: round4(res.CoalesceRate),
		ZipfS:        cfg.zipfS,
		Specs:        cfg.specs,
		Clients:      cfg.clients,
		RateRPS:      cfg.rate,
		DurationS:    round2(res.Elapsed.Seconds()),
		Mode:         mode,
		Commit:       cfg.commit,
	}
	for _, s := range res.SlowestN(cfg.slowest) {
		sum.Slowest = append(sum.Slowest, slowEntry{TraceID: s.TraceID, Ms: ms(s.Latency)})
	}
	for _, tr := range res.PerTarget {
		ns := nodeSummary{
			Addr:       tr.BaseURL,
			GoodputRPS: round2(tr.GoodputRPS),
			P50Ms:      ms(tr.P50),
			P99Ms:      ms(tr.P99),
			Requests:   tr.Requests,
			Done:       tr.Done,
			Refused:    tr.Refused,
			Errors:     tr.Errors,
		}
		cc, cerr := scrapeClusterCounters(tr.BaseURL)
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "coltload: warning: cluster counters from %s: %v\n", tr.BaseURL, cerr)
		} else {
			ns.ProxiedSubmits = cc[`coltd_cluster_proxied_submits_total`]
			ns.PeerFillOK = cc[`coltd_cluster_peer_fill_total{outcome="ok"}`]
			ns.PeerFillMiss = cc[`coltd_cluster_peer_fill_total{outcome="miss"}`]
			ns.PeerFillCorrupt = cc[`coltd_cluster_peer_fill_total{outcome="corrupt"}`]
			ns.StealsIn = cc[`coltd_cluster_steals_total{direction="in"}`]
			ns.StealsOut = cc[`coltd_cluster_steals_total{direction="out"}`]
		}
		sum.Nodes = append(sum.Nodes, ns)
	}
	series, err := scrapeMetrics(base)
	if err != nil {
		// Against an external -addr target the daemon may predate
		// /metrics; self-hosted, a bad exposition is a real failure.
		if cfg.addr == "" {
			return fmt.Errorf("scraping %s/metrics: %w", base, err)
		}
		fmt.Fprintf(os.Stderr, "coltload: warning: scraping %s/metrics: %v\n", base, err)
	} else {
		sum.MetricsSeries = series
	}
	if cfg.preP99 > 0 && sum.P99Ms > 0 {
		sum.PreprP99Ms = cfg.preP99
		sum.SpeedupP99 = round2(cfg.preP99 / sum.P99Ms)
	}
	if cfg.preGoodput > 0 && sum.GoodputRPS > 0 {
		sum.PreprGoodputRPS = cfg.preGoodput
		sum.SpeedupGoodput = round2(sum.GoodputRPS / cfg.preGoodput)
	}
	b, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if cfg.out == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	if err := os.WriteFile(cfg.out, b, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "coltload: wrote %s\n%s", cfg.out, b)
	return nil
}

// scrapeMetrics fetches base/metrics and runs a light validity pass
// over the exposition: every non-comment line must look like
// `name{labels} value` with a parseable value, and the page must
// carry coltd's own series. Returns the coltd_* sample count.
func scrapeMetrics(base string) (series int, err error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return 0, fmt.Errorf("malformed sample line %q", line)
		}
		name := line[:sp]
		if c := name[0]; !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z') {
			return 0, fmt.Errorf("malformed metric name in %q", line)
		}
		if _, perr := strconv.ParseFloat(line[sp+1:], 64); perr != nil {
			return 0, fmt.Errorf("malformed sample value in %q: %v", line, perr)
		}
		if strings.HasPrefix(name, "coltd_") {
			series++
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if series == 0 {
		return 0, fmt.Errorf("exposition carries no coltd_* series")
	}
	return series, nil
}

// scrapeClusterCounters fetches one node's /metrics and returns its
// coltd_cluster_* samples keyed by full series name (labels
// included), e.g. `coltd_cluster_steals_total{direction="in"}`.
func scrapeClusterCounters(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "coltd_cluster_") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, perr := strconv.ParseFloat(line[sp+1:], 64)
		if perr != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}

func round2(x float64) float64 { return float64(int64(x*100+0.5)) / 100 }
func round4(x float64) float64 { return float64(int64(x*10000+0.5)) / 10000 }
