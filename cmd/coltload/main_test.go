package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	ok := func(clients int, rate float64, dur time.Duration, requests, specs int, zipfS float64, refs int, poll time.Duration) error {
		return validate(clients, rate, dur, requests, specs, zipfS, refs, poll, 25*time.Millisecond, time.Second)
	}
	if err := ok(16, 0, 5*time.Second, 0, 64, 1.1, 2000, time.Millisecond); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	cases := []struct {
		name, wantFlag string
		err            error
	}{
		{"clients", "-clients", ok(0, 0, time.Second, 0, 1, 1, 1, time.Millisecond)},
		{"rate", "-rate", ok(1, -1, time.Second, 0, 1, 1, 1, time.Millisecond)},
		{"duration", "-duration", ok(1, 0, 0, 0, 1, 1, 1, time.Millisecond)},
		{"requests", "-requests", ok(1, 0, time.Second, -1, 1, 1, 1, time.Millisecond)},
		{"specs", "-specs", ok(1, 0, time.Second, 0, 0, 1, 1, time.Millisecond)},
		{"zipf-s", "-zipf-s", ok(1, 0, time.Second, 0, 1, -0.5, 1, time.Millisecond)},
		{"refs", "-refs", ok(1, 0, time.Second, 0, 1, 1, 0, time.Millisecond)},
		{"poll", "-poll", ok(1, 0, time.Second, 0, 1, 1, 1, 0)},
		{"retry-base", "-retry-base", validate(1, 0, time.Second, 0, 1, 1, 1, time.Millisecond, 0, time.Second)},
		{"retry-cap", "-retry-cap", validate(1, 0, time.Second, 0, 1, 1, 1, time.Millisecond, time.Second, time.Millisecond)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.err == nil {
				t.Fatal("invalid flag accepted")
			}
			if !strings.Contains(tc.err.Error(), tc.wantFlag) {
				t.Fatalf("error %q does not name %s", tc.err, tc.wantFlag)
			}
		})
	}
}

func TestParseAddrs(t *testing.T) {
	if got, err := parseAddrs("", ""); err != nil || got != nil {
		t.Fatalf("empty -addrs = (%v, %v), want (nil, nil)", got, err)
	}
	got, err := parseAddrs("http://a:1, http://b:2/,", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("parseAddrs = %v", got)
	}
	for _, tc := range []struct{ addrs, addr string }{
		{"http://a:1", "http://b:2"}, // both flags
		{"a:1", ""},                  // no scheme
		{" , ", ""},                  // nothing named
	} {
		if _, err := parseAddrs(tc.addrs, tc.addr); err == nil {
			t.Fatalf("parseAddrs(%q, %q) succeeded", tc.addrs, tc.addr)
		}
	}
}
