package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateRejectsBadSizing(t *testing.T) {
	cases := []struct {
		name                                string
		queueDepth, workers, parall, retain int
		drain                               time.Duration
		wantFlag                            string
	}{
		{"zero queue", 0, 1, 0, 1024, time.Minute, "-queue"},
		{"negative queue", -3, 1, 0, 1024, time.Minute, "-queue"},
		{"zero workers", 8, 0, 0, 1024, time.Minute, "-workers"},
		{"negative parallel", 8, 1, -1, 1024, time.Minute, "-parallel"},
		{"zero retain", 8, 1, 0, 0, time.Minute, "-retain"},
		{"zero drain timeout", 8, 1, 0, 1024, 0, "-drain-timeout"},
		{"negative drain timeout", 8, 1, 0, 1024, -time.Second, "-drain-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validate(tc.queueDepth, tc.workers, tc.parall, tc.retain, tc.drain)
			if err == nil {
				t.Fatal("validate succeeded")
			}
			if !strings.Contains(err.Error(), tc.wantFlag) {
				t.Fatalf("error %q does not mention %s", err, tc.wantFlag)
			}
		})
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validate(16, 1, 0, 1024, 10*time.Minute); err != nil {
		t.Fatalf("validate rejected the default configuration: %v", err)
	}
}
