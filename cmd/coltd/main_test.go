package main

import (
	"net"
	"strings"
	"testing"
	"time"
)

func TestValidateRejectsBadSizing(t *testing.T) {
	cases := []struct {
		name                                string
		queueDepth, workers, parall, retain int
		drain                               time.Duration
		breaker                             int
		probe                               time.Duration
		wantFlag                            string
	}{
		{"zero queue", 0, 1, 0, 1024, time.Minute, 3, time.Second, "-queue"},
		{"negative queue", -3, 1, 0, 1024, time.Minute, 3, time.Second, "-queue"},
		{"zero workers", 8, 0, 0, 1024, time.Minute, 3, time.Second, "-workers"},
		{"negative parallel", 8, 1, -1, 1024, time.Minute, 3, time.Second, "-parallel"},
		{"zero retain", 8, 1, 0, 0, time.Minute, 3, time.Second, "-retain"},
		{"zero drain timeout", 8, 1, 0, 1024, 0, 3, time.Second, "-drain-timeout"},
		{"negative drain timeout", 8, 1, 0, 1024, -time.Second, 3, time.Second, "-drain-timeout"},
		{"zero breaker", 8, 1, 0, 1024, time.Minute, 0, time.Second, "-breaker"},
		{"breaker below -1", 8, 1, 0, 1024, time.Minute, -2, time.Second, "-breaker"},
		{"zero probe interval", 8, 1, 0, 1024, time.Minute, 3, 0, "-probe-interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validate(tc.queueDepth, tc.workers, tc.parall, tc.retain, tc.drain, tc.breaker, tc.probe)
			if err == nil {
				t.Fatal("validate succeeded")
			}
			if !strings.Contains(err.Error(), tc.wantFlag) {
				t.Fatalf("error %q does not mention %s", err, tc.wantFlag)
			}
		})
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validate(16, 1, 0, 1024, 10*time.Minute, 3, 2*time.Second); err != nil {
		t.Fatalf("validate rejected the default configuration: %v", err)
	}
	// -breaker -1 is the documented "never trip" escape hatch.
	if err := validate(16, 1, 0, 1024, 10*time.Minute, -1, 2*time.Second); err != nil {
		t.Fatalf("validate rejected -breaker -1: %v", err)
	}
}

func TestBuildLogger(t *testing.T) {
	for _, level := range []string{"debug", "info", "warn", "error"} {
		l, err := buildLogger(level)
		if err != nil || l == nil {
			t.Fatalf("buildLogger(%q) = (%v, %v), want a logger", level, l, err)
		}
	}
	if l, err := buildLogger("off"); err != nil || l != nil {
		t.Fatalf("buildLogger(off) = (%v, %v), want (nil, nil)", l, err)
	}
	if _, err := buildLogger("verbose"); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("buildLogger(verbose) error = %v, want a -log-level flag error", err)
	}
}

func TestClusterConfig(t *testing.T) {
	hb := 500 * time.Millisecond
	if cfg, err := clusterConfig("", "", 0, hb); err != nil || cfg != nil {
		t.Fatalf("unclustered = (%v, %v), want (nil, nil)", cfg, err)
	}
	// A bare -node-id is a legal single-node cluster.
	cfg, err := clusterConfig("n1", "", 0, hb)
	if err != nil || cfg == nil || cfg.NodeID != "n1" || len(cfg.Peers) != 0 {
		t.Fatalf("bare node-id = (%+v, %v), want single-node config", cfg, err)
	}
	cfg, err = clusterConfig("n1", "n2=http://10.0.0.2:8077,n3=http://10.0.0.3:8077", 4, hb)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.StealThreshold != 4 || cfg.HeartbeatInterval != hb {
		t.Fatalf("config = %+v", cfg)
	}
	if cfg.Peers["n2"] != "http://10.0.0.2:8077" || cfg.Peers["n3"] != "http://10.0.0.3:8077" {
		t.Fatalf("peers = %v", cfg.Peers)
	}

	bad := []struct {
		nodeID, peers string
		steal         int
		hb            time.Duration
		wantFlag      string
	}{
		{"", "n2=http://x:1", 0, hb, "-node-id"},
		{"n.1", "", 0, hb, "-node-id"},
		{"n 1", "", 0, hb, "-node-id"},
		{"n1", "", -1, hb, "-steal-threshold"},
		{"n1", "", 0, 0, "-heartbeat-interval"},
		{"n1", "garbage", 0, hb, "-peers"},
		{"n1", "n2=", 0, hb, "-peers"},
		{"n1", "=http://x:1", 0, hb, "-peers"},
		{"n1", "n1=http://x:1", 0, hb, "-peers"},
		{"n1", "n2=ftp://x:1", 0, hb, "-peers"},
		{"n1", "n2=http://x:1,n2=http://y:1", 0, hb, "-peers"},
		{"n1", "n.2=http://x:1", 0, hb, "-peers"},
		{"n1", " , ", 0, hb, "-peers"},
	}
	for _, tc := range bad {
		_, err := clusterConfig(tc.nodeID, tc.peers, tc.steal, tc.hb)
		if err == nil {
			t.Fatalf("clusterConfig(%q, %q, %d, %v) succeeded", tc.nodeID, tc.peers, tc.steal, tc.hb)
		}
		if !strings.Contains(err.Error(), tc.wantFlag) {
			t.Fatalf("error %q does not mention %s", err, tc.wantFlag)
		}
	}
}

// TestListenURLRewritesUnspecifiedHost is the -addr :0 satellite: the
// startup line must carry a dialable URL with the kernel-chosen port,
// not "[::]:0"'s literal unspecified host.
func TestListenURLRewritesUnspecifiedHost(t *testing.T) {
	ln, err := net.Listen("tcp", ":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	got := listenURL(ln.Addr())
	_, port, _ := net.SplitHostPort(ln.Addr().String())
	if port == "0" || port == "" {
		t.Fatalf("listener reported port %q", port)
	}
	want := "http://127.0.0.1:" + port
	if got != want {
		t.Fatalf("listenURL(%v) = %q, want %q", ln.Addr(), got, want)
	}
	// A concrete host passes through untouched.
	if got := listenURL(&net.TCPAddr{IP: net.IPv4(192, 0, 2, 7), Port: 8077}); got != "http://192.0.2.7:8077" {
		t.Fatalf("concrete host rewritten: %q", got)
	}
}
