package main

import (
	"strings"
	"testing"
	"time"
)

func TestValidateRejectsBadSizing(t *testing.T) {
	cases := []struct {
		name                                string
		queueDepth, workers, parall, retain int
		drain                               time.Duration
		breaker                             int
		probe                               time.Duration
		wantFlag                            string
	}{
		{"zero queue", 0, 1, 0, 1024, time.Minute, 3, time.Second, "-queue"},
		{"negative queue", -3, 1, 0, 1024, time.Minute, 3, time.Second, "-queue"},
		{"zero workers", 8, 0, 0, 1024, time.Minute, 3, time.Second, "-workers"},
		{"negative parallel", 8, 1, -1, 1024, time.Minute, 3, time.Second, "-parallel"},
		{"zero retain", 8, 1, 0, 0, time.Minute, 3, time.Second, "-retain"},
		{"zero drain timeout", 8, 1, 0, 1024, 0, 3, time.Second, "-drain-timeout"},
		{"negative drain timeout", 8, 1, 0, 1024, -time.Second, 3, time.Second, "-drain-timeout"},
		{"zero breaker", 8, 1, 0, 1024, time.Minute, 0, time.Second, "-breaker"},
		{"breaker below -1", 8, 1, 0, 1024, time.Minute, -2, time.Second, "-breaker"},
		{"zero probe interval", 8, 1, 0, 1024, time.Minute, 3, 0, "-probe-interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validate(tc.queueDepth, tc.workers, tc.parall, tc.retain, tc.drain, tc.breaker, tc.probe)
			if err == nil {
				t.Fatal("validate succeeded")
			}
			if !strings.Contains(err.Error(), tc.wantFlag) {
				t.Fatalf("error %q does not mention %s", err, tc.wantFlag)
			}
		})
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := validate(16, 1, 0, 1024, 10*time.Minute, 3, 2*time.Second); err != nil {
		t.Fatalf("validate rejected the default configuration: %v", err)
	}
	// -breaker -1 is the documented "never trip" escape hatch.
	if err := validate(16, 1, 0, 1024, 10*time.Minute, -1, 2*time.Second); err != nil {
		t.Fatalf("validate rejected -breaker -1: %v", err)
	}
}

func TestBuildLogger(t *testing.T) {
	for _, level := range []string{"debug", "info", "warn", "error"} {
		l, err := buildLogger(level)
		if err != nil || l == nil {
			t.Fatalf("buildLogger(%q) = (%v, %v), want a logger", level, l, err)
		}
	}
	if l, err := buildLogger("off"); err != nil || l != nil {
		t.Fatalf("buildLogger(off) = (%v, %v), want (nil, nil)", l, err)
	}
	if _, err := buildLogger("verbose"); err == nil || !strings.Contains(err.Error(), "-log-level") {
		t.Fatalf("buildLogger(verbose) error = %v, want a -log-level flag error", err)
	}
}
