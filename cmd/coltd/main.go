// Command coltd is the simulation-serving daemon: it exposes the
// experiment engine over HTTP/JSON with a bounded job queue, a
// content-addressed result cache, streaming per-job progress (SSE),
// and graceful drain on SIGTERM/SIGINT. README's "Serving" section
// has curl examples; EXPERIMENTS.md documents the job-spec schema.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"colt/internal/cluster"
	"colt/internal/server"
	"colt/internal/server/faultfs"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8077", "listen address (use :0 for an ephemeral port)")
		cacheDir     = flag.String("cache-dir", "", "content-addressed result cache directory (empty = memory-only)")
		queueDepth   = flag.Int("queue", 16, "job queue depth; a full queue refuses with 503")
		workers      = flag.Int("workers", 1, "concurrent simulations")
		parallel     = flag.Int("parallel", 0, "sched workers per simulation (0 = GOMAXPROCS)")
		maxRefs      = flag.Int("max-refs", 50_000_000, "per-request measured-reference ceiling (429 above; <0 disables)")
		retain       = flag.Int("retain", 1024, "terminal jobs kept queryable in the registry; oldest evicted first (reports persist in the cache)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "how long a signal-triggered drain waits for in-flight jobs")
		diskFaults   = flag.String("disk-faults", "", "inject deterministic disk faults, e.g. 'fsync-fail=0.1,rename-fail=0.05' (chaos testing; empty = off)")
		faultSeed    = flag.Uint64("disk-fault-seed", 1, "seed for the fault plane and Retry-After jitter streams")
		breaker      = flag.Int("breaker", 3, "consecutive disk-write failures that trip the memory-only circuit breaker (-1 never trips)")
		probe        = flag.Duration("probe-interval", 2*time.Second, "how often degraded mode re-probes the disk to close the breaker")
		logLevel     = flag.String("log-level", "info", "request-scoped JSON log level on stderr: debug, info, warn, error, or off")
		debugAddr    = flag.String("debug-addr", "", "optional second listener serving /debug/pprof/ and /metrics (empty = off; /metrics is always on the main address)")
		nodeID       = flag.String("node-id", "", "stable cluster identity for this node (required with -peers; single-node without them)")
		peers        = flag.String("peers", "", "comma-separated id=url cluster peers, e.g. 'n2=http://10.0.0.2:8077,n3=http://10.0.0.3:8077' (empty = unclustered)")
		stealThr     = flag.Int("steal-threshold", 0, "queue depth at which idle peers may steal this node's queued jobs (0 disables stealing)")
		heartbeat    = flag.Duration("heartbeat-interval", 500*time.Millisecond, "cluster gossip period")
	)
	flag.Parse()

	if err := validate(*queueDepth, *workers, *parallel, *retain, *drainTimeout, *breaker, *probe); err != nil {
		fmt.Fprintln(os.Stderr, "coltd:", err)
		flag.Usage()
		os.Exit(2)
	}
	clusterCfg, err := clusterConfig(*nodeID, *peers, *stealThr, *heartbeat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coltd:", err)
		flag.Usage()
		os.Exit(2)
	}
	logger, err := buildLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coltd:", err)
		flag.Usage()
		os.Exit(2)
	}
	faultSpec, err := faultfs.ParseSpec(*diskFaults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coltd: -disk-faults:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*addr, *debugAddr, server.Config{
		CacheDir:         *cacheDir,
		QueueDepth:       *queueDepth,
		Workers:          *workers,
		Parallel:         *parallel,
		MaxRefs:          *maxRefs,
		RetainJobs:       *retain,
		DiskFaults:       faultSpec,
		DiskFaultSeed:    *faultSeed,
		BreakerThreshold: *breaker,
		ProbeInterval:    *probe,
		Logger:           logger,
		Cluster:          clusterCfg,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "coltd:", err)
		os.Exit(1)
	}
}

// buildLogger maps -log-level to the daemon's structured JSON logger
// on stderr. "off" returns nil (the server then discards the stream);
// anything unrecognized is a flag error.
func buildLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "off":
		return nil, nil
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level must be debug, info, warn, error, or off, got %q", level)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// validate rejects nonsensical flag combinations before anything
// binds or forks, naming the offending flag.
func validate(queueDepth, workers, parallel, retain int, drainTimeout time.Duration, breaker int, probe time.Duration) error {
	if queueDepth < 1 {
		return fmt.Errorf("-queue must be >= 1, got %d", queueDepth)
	}
	if workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", workers)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", parallel)
	}
	if retain < 1 {
		return fmt.Errorf("-retain must be >= 1, got %d", retain)
	}
	if drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", drainTimeout)
	}
	if breaker == 0 || breaker < -1 {
		return fmt.Errorf("-breaker must be >= 1 (or -1 to never trip), got %d", breaker)
	}
	if probe <= 0 {
		return fmt.Errorf("-probe-interval must be positive, got %v", probe)
	}
	return nil
}

// clusterConfig builds the cluster layer's config from the -node-id,
// -peers, -steal-threshold, and -heartbeat-interval flags, or nil
// when the daemon runs unclustered. A bare -node-id (no peers) is a
// single-node cluster: job IDs gain the node prefix, so the node can
// later be joined by peers without an ID-format change.
func clusterConfig(nodeID, peers string, stealThreshold int, heartbeat time.Duration) (*cluster.Config, error) {
	if nodeID == "" && peers == "" {
		return nil, nil
	}
	if nodeID == "" {
		return nil, fmt.Errorf("-peers requires -node-id")
	}
	// "." separates the node prefix from the job sequence in cluster
	// job IDs; "=" and "," would collide with the -peers syntax on
	// every other node's command line.
	if strings.ContainsAny(nodeID, ".=, \t") {
		return nil, fmt.Errorf("-node-id %q must not contain '.', '=', ',' or whitespace", nodeID)
	}
	if stealThreshold < 0 {
		return nil, fmt.Errorf("-steal-threshold must be >= 0, got %d", stealThreshold)
	}
	if heartbeat <= 0 {
		return nil, fmt.Errorf("-heartbeat-interval must be positive, got %v", heartbeat)
	}
	peerMap, err := parsePeers(peers, nodeID)
	if err != nil {
		return nil, err
	}
	return &cluster.Config{
		NodeID:            nodeID,
		Peers:             peerMap,
		StealThreshold:    stealThreshold,
		HeartbeatInterval: heartbeat,
	}, nil
}

// parsePeers parses the -peers value: comma-separated id=url pairs
// naming every *other* fleet member. A pair naming self is rejected
// (the likely cause is a copy-pasted peer list with the wrong
// -node-id), as are duplicates and non-HTTP URLs.
func parsePeers(s, self string) (map[string]string, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		id, rawURL, ok := strings.Cut(pair, "=")
		if !ok || id == "" || rawURL == "" {
			return nil, fmt.Errorf("-peers entry %q is not id=url", pair)
		}
		if id == self {
			return nil, fmt.Errorf("-peers entry %q names this node (-node-id %s); list only the other members", pair, self)
		}
		if strings.ContainsAny(id, ". \t") {
			return nil, fmt.Errorf("-peers id %q must not contain '.' or whitespace", id)
		}
		u, err := url.Parse(rawURL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("-peers URL %q must be http(s)://host:port", rawURL)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("-peers lists %q twice", id)
		}
		out[id] = strings.TrimRight(rawURL, "/")
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-peers %q names no peers", s)
	}
	return out, nil
}

// listenURL renders a bound listener address as a dialable URL. With
// -addr :0 (or any unspecified host) the kernel-chosen port comes
// back attached to "[::]" or "0.0.0.0", which curl and the cluster
// smoke script cannot dial as-is — substitute the loopback address so
// the startup line is always directly usable.
func listenURL(a net.Addr) string {
	host, port, err := net.SplitHostPort(a.String())
	if err != nil {
		return "http://" + a.String()
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

// run serves until SIGTERM/SIGINT, then drains: admission stops, the
// in-flight jobs finish and land in the cache, still-queued specs are
// checkpointed, the cache index is flushed, and only then does the
// HTTP listener shut down (so status/report endpoints answer
// throughout the drain).
func run(addr, debugAddr string, cfg server.Config, drainTimeout time.Duration) error {
	s, err := server.NewServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The one parseable startup line; the smoke scripts and operators
	// reading logs rely on it to learn the bound port — with -addr :0
	// the URL carries the actual kernel-assigned port, loopback-hosted
	// so it is directly dialable.
	fmt.Printf("coltd: listening on %s\n", listenURL(ln.Addr()))

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// The debug listener carries pprof and a second /metrics mount, so
	// profiling and scraping can live on an operator-only port while
	// the main address faces clients.
	var debugSrv *http.Server
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			httpSrv.Close()
			s.Close()
			return fmt.Errorf("-debug-addr: %w", err)
		}
		fmt.Printf("coltd: debug listening on %s\n", listenURL(dln.Addr()))
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", s.MetricsHandler())
		debugSrv = &http.Server{Handler: dmux}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "coltd: debug listener:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		s.Close()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Println("coltd: draining (finishing in-flight jobs, checkpointing queue, flushing cache index)")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return err
	}
	if debugSrv != nil {
		debugSrv.Shutdown(drainCtx)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("coltd: drained cleanly")
	return nil
}
