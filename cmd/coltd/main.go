// Command coltd is the simulation-serving daemon: it exposes the
// experiment engine over HTTP/JSON with a bounded job queue, a
// content-addressed result cache, streaming per-job progress (SSE),
// and graceful drain on SIGTERM/SIGINT. README's "Serving" section
// has curl examples; EXPERIMENTS.md documents the job-spec schema.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"colt/internal/server"
	"colt/internal/server/faultfs"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8077", "listen address (use :0 for an ephemeral port)")
		cacheDir     = flag.String("cache-dir", "", "content-addressed result cache directory (empty = memory-only)")
		queueDepth   = flag.Int("queue", 16, "job queue depth; a full queue refuses with 503")
		workers      = flag.Int("workers", 1, "concurrent simulations")
		parallel     = flag.Int("parallel", 0, "sched workers per simulation (0 = GOMAXPROCS)")
		maxRefs      = flag.Int("max-refs", 50_000_000, "per-request measured-reference ceiling (429 above; <0 disables)")
		retain       = flag.Int("retain", 1024, "terminal jobs kept queryable in the registry; oldest evicted first (reports persist in the cache)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Minute, "how long a signal-triggered drain waits for in-flight jobs")
		diskFaults   = flag.String("disk-faults", "", "inject deterministic disk faults, e.g. 'fsync-fail=0.1,rename-fail=0.05' (chaos testing; empty = off)")
		faultSeed    = flag.Uint64("disk-fault-seed", 1, "seed for the fault plane and Retry-After jitter streams")
		breaker      = flag.Int("breaker", 3, "consecutive disk-write failures that trip the memory-only circuit breaker (-1 never trips)")
		probe        = flag.Duration("probe-interval", 2*time.Second, "how often degraded mode re-probes the disk to close the breaker")
		logLevel     = flag.String("log-level", "info", "request-scoped JSON log level on stderr: debug, info, warn, error, or off")
		debugAddr    = flag.String("debug-addr", "", "optional second listener serving /debug/pprof/ and /metrics (empty = off; /metrics is always on the main address)")
	)
	flag.Parse()

	if err := validate(*queueDepth, *workers, *parallel, *retain, *drainTimeout, *breaker, *probe); err != nil {
		fmt.Fprintln(os.Stderr, "coltd:", err)
		flag.Usage()
		os.Exit(2)
	}
	logger, err := buildLogger(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coltd:", err)
		flag.Usage()
		os.Exit(2)
	}
	faultSpec, err := faultfs.ParseSpec(*diskFaults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "coltd: -disk-faults:", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*addr, *debugAddr, server.Config{
		CacheDir:         *cacheDir,
		QueueDepth:       *queueDepth,
		Workers:          *workers,
		Parallel:         *parallel,
		MaxRefs:          *maxRefs,
		RetainJobs:       *retain,
		DiskFaults:       faultSpec,
		DiskFaultSeed:    *faultSeed,
		BreakerThreshold: *breaker,
		ProbeInterval:    *probe,
		Logger:           logger,
	}, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "coltd:", err)
		os.Exit(1)
	}
}

// buildLogger maps -log-level to the daemon's structured JSON logger
// on stderr. "off" returns nil (the server then discards the stream);
// anything unrecognized is a flag error.
func buildLogger(level string) (*slog.Logger, error) {
	var lvl slog.Level
	switch level {
	case "off":
		return nil, nil
	case "debug":
		lvl = slog.LevelDebug
	case "info":
		lvl = slog.LevelInfo
	case "warn":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("-log-level must be debug, info, warn, error, or off, got %q", level)
	}
	return slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})), nil
}

// validate rejects nonsensical flag combinations before anything
// binds or forks, naming the offending flag.
func validate(queueDepth, workers, parallel, retain int, drainTimeout time.Duration, breaker int, probe time.Duration) error {
	if queueDepth < 1 {
		return fmt.Errorf("-queue must be >= 1, got %d", queueDepth)
	}
	if workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", workers)
	}
	if parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0, got %d", parallel)
	}
	if retain < 1 {
		return fmt.Errorf("-retain must be >= 1, got %d", retain)
	}
	if drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", drainTimeout)
	}
	if breaker == 0 || breaker < -1 {
		return fmt.Errorf("-breaker must be >= 1 (or -1 to never trip), got %d", breaker)
	}
	if probe <= 0 {
		return fmt.Errorf("-probe-interval must be positive, got %v", probe)
	}
	return nil
}

// run serves until SIGTERM/SIGINT, then drains: admission stops, the
// in-flight jobs finish and land in the cache, still-queued specs are
// checkpointed, the cache index is flushed, and only then does the
// HTTP listener shut down (so status/report endpoints answer
// throughout the drain).
func run(addr, debugAddr string, cfg server.Config, drainTimeout time.Duration) error {
	s, err := server.NewServer(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The one parseable startup line; the smoke script and operators
	// reading logs rely on it to learn the bound port.
	fmt.Printf("coltd: listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// The debug listener carries pprof and a second /metrics mount, so
	// profiling and scraping can live on an operator-only port while
	// the main address faces clients.
	var debugSrv *http.Server
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			httpSrv.Close()
			s.Close()
			return fmt.Errorf("-debug-addr: %w", err)
		}
		fmt.Printf("coltd: debug listening on http://%s\n", dln.Addr())
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", s.MetricsHandler())
		debugSrv = &http.Server{Handler: dmux}
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "coltd: debug listener:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		s.Close()
		return err
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Println("coltd: draining (finishing in-flight jobs, checkpointing queue, flushing cache index)")
	drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		return err
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return err
	}
	if debugSrv != nil {
		debugSrv.Shutdown(drainCtx)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Println("coltd: drained cleanly")
	return nil
}
