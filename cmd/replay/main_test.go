package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colt/internal/arch"
	"colt/internal/trace"
)

func TestParsePolicies(t *testing.T) {
	t.Run("valid list with whitespace", func(t *testing.T) {
		got, err := parsePolicies(" baseline , colt-sa,colt-all ")
		if err != nil {
			t.Fatalf("parsePolicies: %v", err)
		}
		want := []string{"baseline", "colt-sa", "colt-all"}
		if len(got) != len(want) {
			t.Fatalf("parsePolicies = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parsePolicies = %v, want %v", got, want)
			}
		}
	})
	t.Run("every documented policy parses", func(t *testing.T) {
		if _, err := parsePolicies(strings.Join(policyNames(), ",")); err != nil {
			t.Fatalf("parsePolicies(all): %v", err)
		}
	})
	t.Run("unknown policy names the valid set", func(t *testing.T) {
		_, err := parsePolicies("baseline,colt-xl")
		if err == nil {
			t.Fatal("unknown policy accepted")
		}
		msg := err.Error()
		if !strings.Contains(msg, `"colt-xl"`) {
			t.Errorf("error %q does not quote the bad policy", msg)
		}
		for _, want := range policyNames() {
			if !strings.Contains(msg, want) {
				t.Errorf("error %q does not list valid policy %q", msg, want)
			}
		}
	})
	t.Run("empty entry rejected", func(t *testing.T) {
		for _, in := range []string{"", "baseline,,colt-sa", "baseline,"} {
			if _, err := parsePolicies(in); err == nil {
				t.Errorf("parsePolicies(%q) accepted an empty entry", in)
			}
		}
	})
	t.Run("duplicate rejected even with whitespace", func(t *testing.T) {
		_, err := parsePolicies("baseline, baseline")
		if err == nil {
			t.Fatal("duplicate policy accepted")
		}
		if !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("error %q does not mention the duplicate", err)
		}
	})
}

func TestConfigForCoversPolicyNames(t *testing.T) {
	for _, name := range policyNames() {
		if _, err := configFor(name); err != nil {
			t.Errorf("configFor(%q): %v", name, err)
		}
	}
	if _, err := configFor("baseline "); err == nil {
		t.Error("configFor does not reject untrimmed input; parsePolicies must trim first")
	}
}

// writeTrace writes a small valid trace file and returns its path.
func writeTrace(t *testing.T) string {
	t.Helper()
	var tr trace.Trace
	for i := 0; i < 64; i++ {
		tr.Append(trace.Record{VAddr: arch.VAddr(i * 4096), InstGap: 3})
	}
	path := filepath.Join(t.TempDir(), "replay.trace")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := tr.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunReplaysTrace(t *testing.T) {
	path := writeTrace(t)
	if err := run(path, 16, []string{"baseline", "colt-all"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunRejectsBadContig(t *testing.T) {
	path := writeTrace(t)
	for _, contig := range []int{0, -1} {
		err := run(path, contig, []string{"baseline"})
		if err == nil {
			t.Errorf("run with contig=%d succeeded", contig)
			continue
		}
		if !strings.Contains(err.Error(), "contiguity") {
			t.Errorf("contig=%d error %q does not mention contiguity", contig, err)
		}
	}
}

func TestRunMissingTraceError(t *testing.T) {
	err := run(filepath.Join(t.TempDir(), "absent.trace"), 16, []string{"baseline"})
	if err == nil {
		t.Fatal("run with missing trace succeeded")
	}
	if !strings.Contains(err.Error(), "opening trace") {
		t.Errorf("error %q does not say the trace failed to open", err)
	}
}

func TestRunCorruptTraceError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.trace")
	if err := os.WriteFile(path, []byte("NOTATRACE"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run(path, 16, []string{"baseline"})
	if err == nil {
		t.Fatal("run with corrupt trace succeeded")
	}
	if !strings.Contains(err.Error(), "reading trace") {
		t.Errorf("error %q does not say the trace failed to parse", err)
	}
}
