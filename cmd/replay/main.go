// Command replay runs a recorded reference trace (see cmd/tracegen)
// through the TLB hierarchies and reports miss rates for every policy.
// Pages are mapped on first touch with a configurable synthetic
// contiguity (-contig N maps physical runs of N pages), so external
// traces can be studied under controlled allocation contiguity.
//
// Usage:
//
//	replay -trace mcf.trace [-contig 16] [-policies baseline,colt-sa]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"colt/internal/arch"
	"colt/internal/cache"
	"colt/internal/core"
	"colt/internal/mmu"
	"colt/internal/pagetable"
	"colt/internal/trace"
)

type seqFrames struct{ next arch.PFN }

func (s *seqFrames) AllocFrame() (arch.PFN, error) { s.next++; return s.next, nil }
func (s *seqFrames) FreeFrame(arch.PFN)            {}

func main() {
	var (
		path     = flag.String("trace", "", "trace file to replay (required)")
		contig   = flag.Int("contig", 16, "synthetic physical contiguity run length")
		policies = flag.String("policies", "baseline,colt-sa,colt-fa,colt-all,seq-prefetch", "comma-separated policies")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "replay: -trace is required")
		os.Exit(1)
	}
	names, err := parsePolicies(*policies)
	if err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
	if err := run(*path, *contig, names); err != nil {
		fmt.Fprintln(os.Stderr, "replay:", err)
		os.Exit(1)
	}
}

// policyNames lists the valid -policies values, in display order.
func policyNames() []string {
	return []string{"baseline", "colt-sa", "colt-fa", "colt-all", "seq-prefetch"}
}

func configFor(policy string) (core.Config, error) {
	switch policy {
	case "baseline":
		return core.BaselineConfig(), nil
	case "colt-sa":
		return core.CoLTSAConfig(core.DefaultCoLTShift), nil
	case "colt-fa":
		return core.CoLTFAConfig(), nil
	case "colt-all":
		return core.CoLTAllConfig(), nil
	case "seq-prefetch":
		return core.SeqPrefetchConfig(), nil
	}
	return core.Config{}, fmt.Errorf("unknown policy %q (valid policies: %s)",
		policy, strings.Join(policyNames(), ", "))
}

// parsePolicies validates a -policies flag value: entries are
// comma-separated, whitespace around each is ignored, and empty or
// duplicate entries are rejected along with unknown names.
func parsePolicies(s string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	for _, raw := range strings.Split(s, ",") {
		p := strings.TrimSpace(raw)
		if p == "" {
			return nil, fmt.Errorf("empty policy in -policies %q (valid policies: %s)",
				s, strings.Join(policyNames(), ", "))
		}
		if _, err := configFor(p); err != nil {
			return nil, err
		}
		if seen[p] {
			return nil, fmt.Errorf("duplicate policy %q in -policies", p)
		}
		seen[p] = true
		out = append(out, p)
	}
	return out, nil
}

func run(path string, contig int, policies []string) error {
	if contig < 1 {
		return fmt.Errorf("contiguity must be positive, got %d", contig)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("opening trace: %w", err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return fmt.Errorf("reading trace %s: %w", path, err)
	}

	// Map the trace's pages on first touch: physical frames advance
	// sequentially within runs of the requested contiguity, then jump.
	table, err := pagetable.New(&seqFrames{next: 1 << 20})
	if err != nil {
		return err
	}
	attr := arch.AttrPresent | arch.AttrWritable | arch.AttrUser
	next := arch.PFN(1 << 22)
	inRun := 0
	ensure := func(vpn arch.VPN) error {
		if _, ok := table.Lookup(vpn); ok {
			return nil
		}
		if inRun == contig {
			next += 1000 // break the physical run
			inRun = 0
		}
		if err := table.Map(vpn, arch.PTE{PFN: next, Attr: attr}); err != nil {
			return err
		}
		next++
		inRun++
		return nil
	}

	fmt.Printf("replaying %d references (%d instructions) with %d-page synthetic contiguity\n\n",
		tr.Len(), tr.Instructions(), contig)
	fmt.Printf("%-13s %10s %10s %12s %12s\n", "policy", "L1 miss%", "L2 miss%", "walks", "walk cycles")
	for _, p := range policies {
		cfg, err := configFor(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		walker := mmu.NewWalker(table, cache.DefaultHierarchy(), mmu.NewWalkCache(mmu.DefaultWalkCacheEntries))
		h := core.NewHierarchy(cfg, walker)
		var replayErr error
		tr.Replay(func(rec trace.Record) bool {
			vpn := rec.VAddr.Page()
			if err := ensure(vpn); err != nil {
				replayErr = err
				return false
			}
			if res := h.Access(vpn); res.Fault {
				replayErr = fmt.Errorf("fault at vpn %d", vpn)
				return false
			}
			return true
		})
		if replayErr != nil {
			return replayErr
		}
		st := h.Stats()
		fmt.Printf("%-13s %10.2f %10.2f %12d %12d\n",
			p, 100*st.L1MissRate(), 100*st.L2MissRate(), st.Walks, st.WalkCycles)
	}
	return nil
}
