// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp table1|contig|fig16|fig17|fig18|fig19|fig20|fig21|fa-ablation|all-ablation|all [-quick] [-scale F] [-refs N] [-frames N]
package main

import (
	"flag"
	"fmt"
	"os"

	"colt/internal/experiments"
	"colt/internal/workload"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment to run (table1, contig, fig16, fig17, fig18, fig19, fig20, fig21, fa-ablation, all-ablation, prefetch, subblock, refinements, supsize, l2size, virt, timeline, all)")
		quick  = flag.Bool("quick", false, "use small quick-run settings")
		scale  = flag.Float64("scale", 0, "override workload footprint scale")
		refs   = flag.Int("refs", 0, "override measured references per benchmark")
		frames = flag.Int("frames", 0, "override physical memory frames")
		seed   = flag.Uint64("seed", 0, "override RNG seed")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *refs > 0 {
		opts.Refs = *refs
		opts.Warmup = *refs / 10
	}
	if *frames > 0 {
		opts.Frames = *frames
	}
	if *seed != 0 {
		opts.Seed = *seed
	}

	if err := run(*exp, opts); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, opts experiments.Options) error {
	all := exp == "all"
	ran := false
	if all || exp == "table1" {
		ran = true
		rows, err := experiments.Table1(opts)
		if err != nil {
			return err
		}
		fmt.Println("Table 1: real-system TLB misses per million instructions")
		fmt.Println(experiments.RenderTable1(rows))
	}
	if all || exp == "contig" {
		ran = true
		for _, setup := range []experiments.SystemSetup{
			experiments.SetupTHSOnNormal,  // Figures 7-9
			experiments.SetupTHSOffNormal, // Figures 10-12
			experiments.SetupTHSOffLow,    // Figures 13-15
		} {
			rows, err := experiments.ContiguityCDFs(setup, opts)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderContiguity(setup, rows))
		}
	}
	if all || exp == "fig16" {
		ran = true
		rows, err := experiments.Figure16(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderMemhog("Figure 16: average contiguity, THS on, varying memhog", rows))
	}
	if all || exp == "fig17" {
		ran = true
		rows, err := experiments.Figure17(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderMemhog("Figure 17: average contiguity, THS off, varying memhog", rows))
	}
	if all || exp == "fig18" || exp == "fig21" {
		ran = true
		ev, err := experiments.RunStandardEvaluation(opts)
		if err != nil {
			return err
		}
		if all || exp == "fig18" {
			fmt.Println(experiments.RenderEliminations(
				"Figure 18: % of baseline TLB misses eliminated",
				[]string{"colt-sa", "colt-fa", "colt-all"}, ev.Eliminations()))
		}
		if all || exp == "fig21" {
			fmt.Println(experiments.RenderPerformance(
				[]string{"colt-sa", "colt-fa", "colt-all"}, ev.Performance()))
		}
	}
	if all || exp == "fig19" {
		ran = true
		ev, err := experiments.Figure19(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderEliminations(
			"Figure 19: % of baseline misses eliminated by CoLT-SA index left-shift",
			[]string{"shift-1", "shift-2", "shift-3"}, ev.Eliminations()))
	}
	if all || exp == "fig20" {
		ran = true
		rows, err := experiments.Figure20(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFigure20(rows))
	}
	if all || exp == "fa-ablation" {
		ran = true
		ev, err := experiments.AblationFAL2Fill(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderEliminations(
			"Ablation (§7.1.3): CoLT-FA with/without L2 fill",
			[]string{"fa-l2fill", "fa-nofill"}, ev.Eliminations()))
	}
	if all || exp == "all-ablation" {
		ran = true
		ev, err := experiments.AblationAllL2Fill(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderEliminations(
			"Ablation (§7.1.3): CoLT-All with/without L2 fill",
			[]string{"all-l2fill", "all-nofill"}, ev.Eliminations()))
	}
	if all || exp == "prefetch" {
		ran = true
		rows, err := experiments.PrefetchComparison(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderPrefetchComparison(rows))
	}
	if all || exp == "subblock" {
		ran = true
		rows, err := experiments.SubblockComparison(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSubblockComparison(rows))
	}
	if all || exp == "refinements" {
		ran = true
		ev, err := experiments.RefinementsAblation(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderEliminations(
			"Extension: future-work refinements (graceful uncoalescing, coalescing-aware LRU)",
			[]string{"colt-all", "all+graceful", "all+biaslru", "all+both"}, ev.Eliminations()))
	}
	if all || exp == "supsize" {
		ran = true
		rows, err := experiments.SupSizeSensitivity(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSupSizeSensitivity(rows))
	}
	if all || exp == "l2size" {
		ran = true
		rows, err := experiments.L2SizeSensitivity(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderL2SizeSensitivity(rows))
	}
	if all || exp == "virt" {
		ran = true
		rows, err := experiments.VirtualizationComparison(opts)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderVirtualization(rows))
	}
	if all || exp == "timeline" {
		ran = true
		for _, name := range []string{"Mcf", "Sjeng"} {
			spec, err := workload.ByName(name)
			if err != nil {
				return err
			}
			points, err := experiments.ContiguityTimeline(spec, experiments.SetupTHSOnMemhog50, opts, 6)
			if err != nil {
				return err
			}
			fmt.Println(experiments.RenderTimeline(name, experiments.SetupTHSOnMemhog50, points))
		}
	}
	if exp == "calibrate" {
		ran = true
		if err := calibrate(opts); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

// calibrate prints a compact per-benchmark summary used while tuning
// the workload models: baseline MPMI, contiguity, and eliminations.
func calibrate(opts experiments.Options) error {
	fmt.Println("bench        contig  L1MPMI  L2MPMI  |  SA-L1  SA-L2  FA-L1  FA-L2  All-L1 All-L2")
	for _, name := range workload.Names() {
		spec, _ := workload.ByName(name)
		res, err := experiments.RunBenchmark(spec, experiments.SetupTHSOnNormal, opts, experiments.StandardVariants())
		if err != nil {
			return err
		}
		base, _ := res.Variant("baseline")
		l1, l2 := base.MPMI()
		elim := func(v string) (float64, float64) {
			x, _ := res.Variant(v)
			e1 := 100 * (float64(base.TLB.L1Misses) - float64(x.TLB.L1Misses)) / float64(base.TLB.L1Misses)
			e2 := 100 * (float64(base.TLB.L2Misses) - float64(x.TLB.L2Misses)) / float64(base.TLB.L2Misses)
			return e1, e2
		}
		sa1, sa2 := elim("colt-sa")
		fa1, fa2 := elim("colt-fa")
		al1, al2 := elim("colt-all")
		fmt.Printf("%-12s %6.1f %7.0f %7.0f  | %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f\n",
			name, res.Contig.AverageContiguity(), l1, l2, sa1, sa2, fa1, fa2, al1, al2)
	}
	return nil
}
