// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp table1|contig|fig16|...|all [-quick] [-parallel N] [-scale F] [-refs N] [-frames N]
//	            [-out DIR] [-hist] [-trace-events DIR] [-progress]
//	            [-faults SPEC] [-strict-invariants] [-job-timeout D] [-retries N]
//	            [-cpuprofile FILE] [-memprofile FILE]
//
// Run with -exp list (or an unknown name) to see every experiment.
// With -out DIR, each experiment additionally writes its
// machine-readable report to DIR/<name>.json (stable, key-sorted JSON —
// see internal/metrics and EXPERIMENTS.md) plus a DIR/<name>.timing.json
// wall-clock sidecar.
//
// Observability: -hist embeds deterministic log2 histograms (coalescing
// run length, walk depth/cycles, contiguity runs, TLB entry lifetimes)
// and simulated-time phase spans into each report record; -trace-events
// DIR writes one Chrome trace-event file per experiment
// (DIR/<name>.trace.json, loadable in ui.perfetto.dev); -progress
// prints live per-job phase and completion lines to stderr. None of
// these change simulation results.
//
// -faults injects deterministic failures ("site=rate,..." or "all=rate";
// see internal/fault); failed jobs are retried -retries times, then
// recorded in the report's Failures section while surviving jobs still
// render. -strict-invariants runs the internal/invariant auditors at
// every checkpoint. -job-timeout bounds each scheduler job's wall time.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"

	"colt/internal/experiments"
	"colt/internal/fault"
	"colt/internal/metrics"
	"colt/internal/stats"
	"colt/internal/telemetry"
	"colt/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", `experiment to run ("list" prints the choices)`)
		quick    = flag.Bool("quick", false, "use small quick-run settings")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0),
			"concurrent (benchmark × setup) jobs; results are identical for every value")
		scale      = flag.Float64("scale", 0, "override workload footprint scale")
		refs       = flag.Int("refs", 0, "override measured references per benchmark")
		frames     = flag.Int("frames", 0, "override physical memory frames")
		seed       = flag.Uint64("seed", 0, "override RNG seed")
		outDir     = flag.String("out", "", "directory for machine-readable metrics JSON (one report per experiment)")
		hist       = flag.Bool("hist", false, "embed telemetry histograms and phase spans into metrics records")
		traceDir   = flag.String("trace-events", "", "directory for Chrome trace-event JSON (one trace per experiment)")
		progress   = flag.Bool("progress", false, "print live per-job progress to stderr")
		faults     = flag.String("faults", "", `deterministic fault injection, "site=rate,..." or "all=rate"`)
		strict     = flag.Bool("strict-invariants", false, "run invariant auditors at every checkpoint")
		jobTimeout = flag.Duration("job-timeout", 0, "wall-clock limit per scheduler job (0 = none)")
		retries    = flag.Int("retries", 1, "deterministic retries per job for injected faults")
		cpuProfile = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a pprof heap profile to this file on exit")
	)
	flag.Parse()

	opts := experiments.DefaultOptions()
	if *quick {
		opts = experiments.QuickOptions()
	}
	opts.Parallel = *parallel
	if *scale > 0 {
		opts.Scale = *scale
	}
	if *refs > 0 {
		opts.Refs = *refs
		opts.Warmup = *refs / 10
	}
	if *frames > 0 {
		opts.Frames = *frames
	}
	if *seed != 0 {
		opts.Seed = *seed
	}
	spec, err := fault.ParseSpec(*faults)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -faults:", err)
		os.Exit(2)
	}
	opts.Faults = spec
	opts.CheckInvariants = *strict
	opts.JobTimeout = *jobTimeout
	if *retries < 0 {
		fmt.Fprintln(os.Stderr, "experiments: -retries must be >= 0, got", *retries)
		os.Exit(2)
	}
	opts.Retries = *retries
	opts.Histograms = *hist
	if *progress {
		opts.Progress = telemetry.NewReporter(os.Stderr)
	}
	// SIGINT/SIGTERM cancel the run's context instead of killing the
	// process: in-flight jobs abort at their next checkpoint,
	// undispatched jobs become canceled-failure records, and reports
	// for completed jobs are still flushed below — never a file torn
	// mid-write. A second signal kills immediately (NotifyContext
	// restores default handling once the context is canceled).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts.Ctx = ctx

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments: cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	err = run(*exp, opts, *outDir, *traceDir)

	if *memProfile != "" {
		if perr := writeHeapProfile(*memProfile); perr != nil {
			fmt.Fprintln(os.Stderr, "experiments:", perr)
			if err == nil {
				err = perr
			}
		}
	}
	// A signal that arrived late enough for the run to degrade
	// gracefully (completed jobs rendered, the rest recorded as
	// canceled failures) produces no error — but an interrupted run
	// must still exit non-zero.
	if err == nil && ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted; completed jobs were rendered and reports flushed")
		os.Exit(1)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted; completed jobs were rendered and reports flushed")
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// writeHeapProfile snapshots the heap after a final GC, so the profile
// reflects live allocations rather than garbage.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("memprofile: %w", err)
	}
	return nil
}

// experiment is one runnable entry of the registry.
type experiment struct {
	name string
	desc string
	run  func(opts experiments.Options) error
	// skipAll excludes the entry from -exp all (diagnostics).
	skipAll bool
}

// evalCache memoizes the standard evaluation so "-exp all" runs it once
// for both Figure 18 and Figure 21. The cache collects the evaluation's
// metrics records into its own collector and merges them into each
// caller's, so both figures' reports carry the shared records.
type evalCache struct {
	ev  *experiments.Evaluation
	rec *metrics.Collector
}

func (c *evalCache) get(opts experiments.Options) (*experiments.Evaluation, error) {
	if c.ev == nil {
		inner := opts
		if opts.Metrics != nil {
			c.rec = metrics.NewCollector()
			inner.Metrics = c.rec
		}
		ev, err := experiments.RunStandardEvaluation(inner)
		if err != nil {
			return nil, err
		}
		c.ev = ev
	}
	if opts.Metrics != nil {
		opts.Metrics.Merge(c.rec)
	}
	return c.ev, nil
}

// registry returns the ordered experiment table. It is built per run()
// call so the fig18/fig21 shared evaluation cache never leaks between
// invocations.
func registry() []experiment {
	var std evalCache
	return []experiment{
		{name: "table1", desc: "Table 1: real-system TLB MPMI, THS on/off",
			run: func(opts experiments.Options) error {
				rows, err := experiments.Table1(opts)
				if err != nil {
					return err
				}
				fmt.Println("Table 1: real-system TLB misses per million instructions")
				fmt.Println(experiments.RenderTable1(rows))
				return nil
			}},
		{name: "contig", desc: "Figures 7-15: contiguity CDFs per kernel configuration",
			run: func(opts experiments.Options) error {
				for _, setup := range []experiments.SystemSetup{
					experiments.SetupTHSOnNormal,  // Figures 7-9
					experiments.SetupTHSOffNormal, // Figures 10-12
					experiments.SetupTHSOffLow,    // Figures 13-15
				} {
					rows, err := experiments.ContiguityCDFs(setup, opts)
					if err != nil {
						return err
					}
					fmt.Println(experiments.RenderContiguity(setup, rows))
				}
				return nil
			}},
		{name: "fig16", desc: "Figure 16: average contiguity vs memhog, THS on",
			run: func(opts experiments.Options) error {
				rows, err := experiments.Figure16(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderMemhog("Figure 16: average contiguity, THS on, varying memhog", rows))
				return nil
			}},
		{name: "fig17", desc: "Figure 17: average contiguity vs memhog, THS off",
			run: func(opts experiments.Options) error {
				rows, err := experiments.Figure17(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderMemhog("Figure 17: average contiguity, THS off, varying memhog", rows))
				return nil
			}},
		{name: "fig18", desc: "Figure 18: % of baseline TLB misses eliminated",
			run: func(opts experiments.Options) error {
				ev, err := std.get(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderEliminations(
					"Figure 18: % of baseline TLB misses eliminated",
					[]string{"colt-sa", "colt-fa", "colt-all"}, ev.Eliminations()))
				return nil
			}},
		{name: "fig19", desc: "Figure 19: CoLT-SA index left-shift sweep",
			run: func(opts experiments.Options) error {
				ev, err := experiments.Figure19(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderEliminations(
					"Figure 19: % of baseline misses eliminated by CoLT-SA index left-shift",
					[]string{"shift-1", "shift-2", "shift-3"}, ev.Eliminations()))
				return nil
			}},
		{name: "fig20", desc: "Figure 20: L2 associativity study",
			run: func(opts experiments.Options) error {
				rows, err := experiments.Figure20(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderFigure20(rows))
				return nil
			}},
		{name: "fig21", desc: "Figure 21: modeled performance improvement",
			run: func(opts experiments.Options) error {
				ev, err := std.get(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderPerformance(
					[]string{"colt-sa", "colt-fa", "colt-all"}, ev.Performance()))
				return nil
			}},
		{name: "fa-ablation", desc: "Ablation: CoLT-FA with/without L2 fill (§7.1.3)",
			run: func(opts experiments.Options) error {
				ev, err := experiments.AblationFAL2Fill(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderEliminations(
					"Ablation (§7.1.3): CoLT-FA with/without L2 fill",
					[]string{"fa-l2fill", "fa-nofill"}, ev.Eliminations()))
				return nil
			}},
		{name: "all-ablation", desc: "Ablation: CoLT-All with/without L2 fill (§7.1.3)",
			run: func(opts experiments.Options) error {
				ev, err := experiments.AblationAllL2Fill(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderEliminations(
					"Ablation (§7.1.3): CoLT-All with/without L2 fill",
					[]string{"all-l2fill", "all-nofill"}, ev.Eliminations()))
				return nil
			}},
		{name: "prefetch", desc: "Extension: CoLT vs sequential TLB prefetching",
			run: func(opts experiments.Options) error {
				rows, err := experiments.PrefetchComparison(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderPrefetchComparison(rows))
				return nil
			}},
		{name: "subblock", desc: "Extension: CoLT-SA vs partial-subblock TLBs",
			run: func(opts experiments.Options) error {
				rows, err := experiments.SubblockComparison(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderSubblockComparison(rows))
				return nil
			}},
		{name: "refinements", desc: "Extension: future-work refinements ablation",
			run: func(opts experiments.Options) error {
				ev, err := experiments.RefinementsAblation(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderEliminations(
					"Extension: future-work refinements (graceful uncoalescing, coalescing-aware LRU)",
					[]string{"colt-all", "all+graceful", "all+biaslru", "all+both"}, ev.Eliminations()))
				return nil
			}},
		{name: "supsize", desc: "Extension: CoLT-FA superpage-TLB size sensitivity",
			run: func(opts experiments.Options) error {
				rows, err := experiments.SupSizeSensitivity(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderSupSizeSensitivity(rows))
				return nil
			}},
		{name: "l2size", desc: "Extension: L2 TLB size sensitivity",
			run: func(opts experiments.Options) error {
				rows, err := experiments.L2SizeSensitivity(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderL2SizeSensitivity(rows))
				return nil
			}},
		{name: "virt", desc: "Extension: CoLT under virtualization (2D walks)",
			run: func(opts experiments.Options) error {
				rows, err := experiments.VirtualizationComparison(opts)
				if err != nil {
					return err
				}
				fmt.Println(experiments.RenderVirtualization(rows))
				return nil
			}},
		{name: "timeline", desc: "Contiguity over time under memhog pressure",
			run: func(opts experiments.Options) error {
				names := []string{"Mcf", "Sjeng"}
				specs := make([]workload.Spec, len(names))
				for i, name := range names {
					spec, err := workload.ByName(name)
					if err != nil {
						return err
					}
					specs[i] = spec
				}
				series, err := experiments.Timelines(specs, experiments.SetupTHSOnMemhog50, opts, 6)
				if err != nil {
					return err
				}
				for i, points := range series {
					if points == nil {
						// The benchmark's job failed under -faults; its
						// failure is reported separately.
						continue
					}
					fmt.Println(experiments.RenderTimeline(names[i], experiments.SetupTHSOnMemhog50, points))
				}
				return nil
			}},
		{name: "calibrate", desc: "Diagnostic: per-benchmark calibration summary", skipAll: true,
			run: calibrate},
	}
}

// expNames lists every registry name (plus the "all" pseudo-entry),
// for usage messages.
func expNames(reg []experiment) string {
	names := make([]string, 0, len(reg)+1)
	for _, e := range reg {
		names = append(names, e.name)
	}
	names = append(names, "all")
	sort.Strings(names)
	return strings.Join(names, ", ")
}

func run(exp string, opts experiments.Options, outDir, traceDir string) error {
	reg := registry()
	if exp == "list" {
		for _, e := range reg {
			fmt.Printf("  %-14s %s\n", e.name, e.desc)
		}
		fmt.Printf("  %-14s every experiment above (except diagnostics)\n", "all")
		return nil
	}
	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return fmt.Errorf("creating -out directory: %w", err)
		}
	}
	if traceDir != "" {
		if err := os.MkdirAll(traceDir, 0o755); err != nil {
			return fmt.Errorf("creating -trace-events directory: %w", err)
		}
	}
	if exp == "all" {
		for _, e := range reg {
			if e.skipAll {
				continue
			}
			if err := runOne(e, opts, outDir, traceDir); err != nil {
				return err
			}
		}
		return nil
	}
	for _, e := range reg {
		if e.name == exp {
			return runOne(e, opts, outDir, traceDir)
		}
	}
	return fmt.Errorf("unknown experiment %q; valid experiments: %s", exp, expNames(reg))
}

// runOne executes one registry entry, collecting and writing its
// metrics report when -out is set and its Chrome trace when
// -trace-events is set. With -faults, a collector is attached even
// without -out so injected job failures are reported rather than
// silently dropped with the degraded rows.
func runOne(e experiment, opts experiments.Options, outDir, traceDir string) error {
	if traceDir != "" {
		// A fresh set per experiment, so each registry entry exports its
		// own DIR/<name>.trace.json.
		opts.Events = new(telemetry.TraceSet)
	}
	var col *metrics.Collector
	if outDir != "" || opts.Faults.Enabled() {
		col = metrics.NewCollector()
		opts.Metrics = col
	}
	runErr := e.run(opts)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return runErr
	}
	// On interruption (runErr wraps context.Canceled) fall through:
	// the collector still holds every completed record plus the
	// canceled-failure entries, and flushing them is the whole point
	// of draining instead of dying.
	if col != nil {
		printFailures(e.name, col)
	}
	if outDir != "" {
		report, err := col.Report(e.name, opts.Snapshot()).StableJSON()
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		if err := os.WriteFile(filepath.Join(outDir, e.name+".json"), report, 0o644); err != nil {
			return fmt.Errorf("%s: writing report: %w", e.name, err)
		}
		timing, err := col.TimingJSON(e.name)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		if err := os.WriteFile(filepath.Join(outDir, e.name+".timing.json"), timing, 0o644); err != nil {
			return fmt.Errorf("%s: writing timing report: %w", e.name, err)
		}
	}
	if traceDir != "" {
		if err := writeTrace(filepath.Join(traceDir, e.name+".trace.json"), opts.Events); err != nil {
			return fmt.Errorf("%s: writing trace events: %w", e.name, err)
		}
	}
	return runErr
}

// writeTrace renders one experiment's collected job traces as a Chrome
// trace-event file.
func writeTrace(path string, events *telemetry.TraceSet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := events.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printFailures summarizes the jobs an experiment lost to injected
// faults or timeouts; surviving rows have already been rendered.
func printFailures(name string, col *metrics.Collector) {
	failures := col.Failures()
	if len(failures) == 0 {
		return
	}
	fmt.Printf("%s: %d job(s) failed and were dropped from the tables above:\n", name, len(failures))
	for _, f := range failures {
		detail := fmt.Sprintf("after %d attempt(s)", f.Attempts)
		if f.TimedOut {
			detail = "timed out"
		}
		fmt.Printf("  %s/%s (%s, %s): %s\n", f.Bench, f.Setup, f.Kind, detail, f.Error)
	}
}

// calibrate prints a compact per-benchmark summary used while tuning
// the workload models: baseline MPMI, contiguity, and eliminations.
func calibrate(opts experiments.Options) error {
	fmt.Println("bench        contig  L1MPMI  L2MPMI  |  SA-L1  SA-L2  FA-L1  FA-L2  All-L1 All-L2")
	for _, name := range workload.Names() {
		spec, _ := workload.ByName(name)
		res, err := experiments.RunBenchmark(spec, experiments.SetupTHSOnNormal, opts, experiments.StandardVariants())
		if err != nil {
			return err
		}
		base, _ := res.Variant("baseline")
		l1, l2 := base.MPMI()
		// PercentEliminated is zero-guarded: a quick run short enough to
		// record no baseline misses reports 0, not NaN/Inf.
		elim := func(v string) (float64, float64) {
			x, _ := res.Variant(v)
			e1 := stats.PercentEliminated(float64(base.TLB.L1Misses), float64(x.TLB.L1Misses))
			e2 := stats.PercentEliminated(float64(base.TLB.L2Misses), float64(x.TLB.L2Misses))
			return e1, e2
		}
		sa1, sa2 := elim("colt-sa")
		fa1, fa2 := elim("colt-fa")
		al1, al2 := elim("colt-all")
		fmt.Printf("%-12s %6.1f %7.0f %7.0f  | %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f\n",
			name, res.Contig.AverageContiguity(), l1, l2, sa1, sa2, fa1, fa2, al1, al2)
	}
	return nil
}
