package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"colt/internal/experiments"
	"colt/internal/fault"
	"colt/internal/metrics"
)

// TestUnknownExperimentError guards the CLI contract: an unknown -exp
// must produce an error (non-zero exit in main) whose message names the
// bad input and lists every valid experiment.
func TestUnknownExperimentError(t *testing.T) {
	err := run("no-such-experiment", experiments.QuickOptions(), "", "")
	if err == nil {
		t.Fatal("run with unknown experiment returned nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-experiment"`) {
		t.Errorf("error %q does not quote the unknown name", msg)
	}
	for _, want := range []string{"table1", "fig18", "virt", "timeline", "all"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not list valid experiment %q", msg, want)
		}
	}
}

// TestRegistryNamesUnique catches copy-paste duplicates when new
// experiments are added.
func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range registry() {
		if e.name == "all" || e.name == "list" {
			t.Errorf("registry entry %q shadows a built-in pseudo-experiment", e.name)
		}
		if seen[e.name] {
			t.Errorf("duplicate registry entry %q", e.name)
		}
		seen[e.name] = true
		if e.run == nil {
			t.Errorf("registry entry %q has no run function", e.name)
		}
	}
}

// TestKnownExperimentRuns smoke-tests the registry dispatch path with
// the cheapest real experiment.
func TestKnownExperimentRuns(t *testing.T) {
	opts := experiments.QuickOptions()
	opts.Refs = 5_000
	opts.Warmup = 500
	if err := run("timeline", opts, "", ""); err != nil {
		t.Fatalf("run(timeline): %v", err)
	}
}

// TestOutDirDeterministic guards the -out contract: the metrics report
// is byte-identical at every -parallel width, matches the checked-in
// golden for the same configuration, and the timing sidecar exists.
func TestOutDirDeterministic(t *testing.T) {
	opts := experiments.GoldenOptions()
	dirs := map[int]string{1: t.TempDir(), 8: t.TempDir()}
	outputs := map[int][]byte{}
	for _, width := range []int{1, 8} {
		opts.Parallel = width
		if err := run("fig18", opts, dirs[width], ""); err != nil {
			t.Fatalf("run(fig18, parallel=%d): %v", width, err)
		}
		data, err := os.ReadFile(filepath.Join(dirs[width], "fig18.json"))
		if err != nil {
			t.Fatalf("report missing at parallel=%d: %v", width, err)
		}
		outputs[width] = data
		if _, err := os.Stat(filepath.Join(dirs[width], "fig18.timing.json")); err != nil {
			t.Errorf("timing sidecar missing at parallel=%d: %v", width, err)
		}
	}
	if !bytes.Equal(outputs[1], outputs[8]) {
		t.Errorf("report differs between -parallel 1 and -parallel 8:\n%s",
			strings.Join(metrics.Diff(outputs[8], outputs[1]), "\n"))
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "goldens", "fig18.json"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(outputs[1], golden) {
		t.Errorf("CLI -out report does not match checked-in golden:\n%s",
			strings.Join(metrics.Diff(outputs[1], golden), "\n"))
	}
}

// TestFaultedRunRendersPartialReport guards the -faults contract: a
// degraded run exits zero, and its report carries both surviving
// records and a structured failures section.
func TestFaultedRunRendersPartialReport(t *testing.T) {
	spec, err := fault.ParseSpec("trace-corrupt=5e-5")
	if err != nil {
		t.Fatal(err)
	}
	opts := experiments.GoldenOptions()
	opts.Faults = spec
	opts.Retries = 1
	opts.CheckInvariants = true
	dir := t.TempDir()
	if err := run("fig18", opts, dir, ""); err != nil {
		t.Fatalf("faulted run failed outright: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig18.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"failures"`, `"injected": true`, `"fault_spec": "trace-corrupt=5e-05"`, `"records"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("faulted report lacks %s", want)
		}
	}
}

// TestTraceEventsOutput guards the -trace-events contract: the run
// writes one valid Chrome trace-event file per experiment, and -hist
// embeds histogram objects into the -out report.
func TestTraceEventsOutput(t *testing.T) {
	opts := experiments.GoldenOptions()
	opts.Histograms = true
	outDir, traceDir := t.TempDir(), t.TempDir()
	if err := run("table1", opts, outDir, traceDir); err != nil {
		t.Fatalf("run(table1): %v", err)
	}
	data, err := os.ReadFile(filepath.Join(traceDir, "table1.trace.json"))
	if err != nil {
		t.Fatalf("trace file missing: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace file has no events")
	}
	for _, key := range []string{"ph", "pid", "name"} {
		if _, ok := doc.TraceEvents[0][key]; !ok {
			t.Errorf("first trace event lacks required key %q: %v", key, doc.TraceEvents[0])
		}
	}
	report, err := os.ReadFile(filepath.Join(outDir, "table1.json"))
	if err != nil {
		t.Fatalf("report missing: %v", err)
	}
	for _, want := range []string{`"hists"`, `"spans"`, `"histograms": true`} {
		if !strings.Contains(string(report), want) {
			t.Errorf("-hist report lacks %s", want)
		}
	}
}

// TestBadFaultSpecNamesSites guards the -faults parse contract relied
// on by main: the error must name every valid site.
func TestBadFaultSpecNamesSites(t *testing.T) {
	_, err := fault.ParseSpec("bogus-site=0.5")
	if err == nil {
		t.Fatal("ParseSpec accepted an unknown site")
	}
	for _, site := range fault.Sites() {
		if !strings.Contains(err.Error(), string(site)) {
			t.Errorf("parse error %q does not name site %s", err, site)
		}
	}
}
