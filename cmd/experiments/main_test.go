package main

import (
	"strings"
	"testing"

	"colt/internal/experiments"
)

// TestUnknownExperimentError guards the CLI contract: an unknown -exp
// must produce an error (non-zero exit in main) whose message names the
// bad input and lists every valid experiment.
func TestUnknownExperimentError(t *testing.T) {
	err := run("no-such-experiment", experiments.QuickOptions())
	if err == nil {
		t.Fatal("run with unknown experiment returned nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"no-such-experiment"`) {
		t.Errorf("error %q does not quote the unknown name", msg)
	}
	for _, want := range []string{"table1", "fig18", "virt", "timeline", "all"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not list valid experiment %q", msg, want)
		}
	}
}

// TestRegistryNamesUnique catches copy-paste duplicates when new
// experiments are added.
func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range registry() {
		if e.name == "all" || e.name == "list" {
			t.Errorf("registry entry %q shadows a built-in pseudo-experiment", e.name)
		}
		if seen[e.name] {
			t.Errorf("duplicate registry entry %q", e.name)
		}
		seen[e.name] = true
		if e.run == nil {
			t.Errorf("registry entry %q has no run function", e.name)
		}
	}
}

// TestKnownExperimentRuns smoke-tests the registry dispatch path with
// the cheapest real experiment.
func TestKnownExperimentRuns(t *testing.T) {
	opts := experiments.QuickOptions()
	opts.Refs = 5_000
	opts.Warmup = 500
	if err := run("timeline", opts); err != nil {
		t.Fatalf("run(timeline): %v", err)
	}
}
