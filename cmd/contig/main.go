// Command contig runs the page-allocation contiguity characterization
// (the paper's §6) for one benchmark or all of them under a chosen
// kernel configuration, printing the CDF samples and averages.
//
// Usage:
//
//	contig [-bench Mcf] [-ths=false] [-lowcompaction] [-memhog 25] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"colt"
)

func main() {
	var (
		bench   = flag.String("bench", "", "benchmark name (empty = all)")
		ths     = flag.Bool("ths", true, "enable transparent hugepage support")
		lowComp = flag.Bool("lowcompaction", false, "reduce memory compaction (defrag off)")
		memhog  = flag.Int("memhog", 0, "memhog percentage (0-94; the paper uses 0, 25, 50)")
		quick   = flag.Bool("quick", false, "small fast run")
	)
	flag.Parse()

	opts := colt.DefaultOptions()
	if *quick {
		opts = colt.QuickOptions()
	}
	kernel := colt.KernelConfig{THP: *ths, LowCompaction: *lowComp, MemhogPct: *memhog}
	if err := run(*bench, kernel, opts); err != nil {
		fmt.Fprintln(os.Stderr, "contig:", err)
		os.Exit(1)
	}
}

// run validates the flag-derived configuration and prints the
// contiguity table for the selected benchmarks.
func run(bench string, kernel colt.KernelConfig, opts colt.Options) error {
	if kernel.MemhogPct < 0 || kernel.MemhogPct >= 95 {
		return fmt.Errorf("-memhog %d%% is out of range [0, 95); the paper uses 0, 25, and 50", kernel.MemhogPct)
	}
	benches := colt.Benchmarks()
	if bench != "" {
		if !knownBench(bench) {
			return fmt.Errorf("unknown benchmark %q (known: %s)", bench, strings.Join(colt.Benchmarks(), ", "))
		}
		benches = []string{bench}
	}
	fmt.Printf("kernel: THS=%v lowCompaction=%v memhog=%d%%\n\n", kernel.THP, kernel.LowCompaction, kernel.MemhogPct)
	fmt.Printf("%-12s %8s %10s %8s  CDF at 1/4/16/64/256/1024\n", "benchmark", "avg", "superpages", ">512")
	for _, b := range benches {
		rep, err := colt.MeasureContiguity(b, kernel, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s %8.1f %10d %8.2f  %.2f %.2f %.2f %.2f %.2f %.2f\n",
			rep.Bench, rep.Average, rep.SuperpagePages, rep.FracOver512,
			rep.CDF[1], rep.CDF[4], rep.CDF[16], rep.CDF[64], rep.CDF[256], rep.CDF[1024])
	}
	return nil
}

// knownBench reports whether name is one of the paper's benchmarks.
func knownBench(name string) bool {
	for _, b := range colt.Benchmarks() {
		if b == name {
			return true
		}
	}
	return false
}
