package main

import (
	"strings"
	"testing"

	"colt"
)

func TestRunRejectsBadMemhog(t *testing.T) {
	for _, pct := range []int{-1, 95, 200} {
		kernel := colt.DefaultKernel()
		kernel.MemhogPct = pct
		err := run("Mcf", kernel, colt.QuickOptions())
		if err == nil {
			t.Errorf("run with memhog=%d succeeded", pct)
			continue
		}
		if !strings.Contains(err.Error(), "-memhog") {
			t.Errorf("memhog=%d error %q does not mention the flag", pct, err)
		}
	}
}

func TestRunUnknownBenchNamesValidSet(t *testing.T) {
	err := run("NoSuchBench", colt.DefaultKernel(), colt.QuickOptions())
	if err == nil {
		t.Fatal("run with unknown benchmark succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"NoSuchBench"`) {
		t.Errorf("error %q does not quote the bad benchmark", msg)
	}
	for _, want := range colt.Benchmarks() {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q does not list valid benchmark %q", msg, want)
		}
	}
}

func TestRunSingleBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a full workload image")
	}
	if err := run("Mcf", colt.DefaultKernel(), colt.QuickOptions()); err != nil {
		t.Fatalf("run: %v", err)
	}
}
