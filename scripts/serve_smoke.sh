#!/bin/sh
# Serve-path smoke test (make serve-smoke): boot coltd on an ephemeral
# port with a disk cache, submit a quick table1 job, wait for it,
# fetch the report, resubmit the identical spec and assert the second
# serve is a byte-identical cache hit with no additional simulation,
# check the observability surface (healthz/readyz, the X-Colt-Trace
# header, and a valid /metrics exposition with completed jobs on it),
# then SIGTERM the daemon and assert it drains cleanly.
set -eu

GO=${GO:-go}
CURL="curl -sS --fail-with-body --max-time 30"
command -v curl >/dev/null || { echo "serve-smoke: curl not found"; exit 1; }

work=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -9 "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
    echo "serve-smoke: FAIL: $1" >&2
    echo "---- daemon log ----" >&2
    cat "$work/coltd.log" >&2 || true
    exit 1
}

echo "serve-smoke: building coltd"
$GO build -o "$work/coltd" ./cmd/coltd

"$work/coltd" -addr 127.0.0.1:0 -cache-dir "$work/cache" >"$work/coltd.log" 2>&1 &
daemon_pid=$!

# The startup line names the bound port.
base=""
for _ in $(seq 1 100); do
    base=$(sed -n 's|^coltd: listening on \(http://.*\)$|\1|p' "$work/coltd.log")
    [ -n "$base" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || fail "daemon exited during startup"
    sleep 0.1
done
[ -n "$base" ] || fail "daemon never reported its listen address"
echo "serve-smoke: daemon at $base"

spec='{"experiment": "table1", "quick": true, "refs": 2000}'

$CURL "$base/v1/healthz" | grep -q '"ok"' || fail "healthz not ok"
$CURL "$base/v1/readyz" | grep -q '"ok"' || fail "readyz not ok while serving"

$CURL -D "$work/submit1.headers" -X POST -d "$spec" "$base/v1/jobs" >"$work/submit1.json" \
    || fail "first submission refused"
grep -qi '^x-colt-trace: [0-9a-f]' "$work/submit1.headers" \
    || fail "submission response carries no X-Colt-Trace header"
id=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$work/submit1.json" | head -n 1)
[ -n "$id" ] || fail "no job id in $(cat "$work/submit1.json")"
grep -q '"cached": true' "$work/submit1.json" && fail "first submission claims a cache hit"

echo "serve-smoke: submitted $id; waiting for completion"
state=""
for _ in $(seq 1 300); do
    $CURL "$base/v1/jobs/$id" >"$work/status.json" || fail "status fetch failed"
    state=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$work/status.json" | head -n 1)
    case "$state" in
        done) break ;;
        failed|canceled) fail "job reached state $state: $(cat "$work/status.json")" ;;
    esac
    sleep 0.2
done
[ "$state" = "done" ] || fail "job never completed (last state: $state)"

$CURL "$base/v1/jobs/$id/report" >"$work/report1.json" || fail "report fetch failed"
[ -s "$work/report1.json" ] || fail "empty report"

echo "serve-smoke: resubmitting identical spec"
$CURL -X POST -d "$spec" "$base/v1/jobs" >"$work/submit2.json" \
    || fail "resubmission refused"
grep -q '"cached": true' "$work/submit2.json" \
    || fail "resubmission was not a cache hit: $(cat "$work/submit2.json")"
id2=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$work/submit2.json" | head -n 1)
$CURL "$base/v1/jobs/$id2/report" >"$work/report2.json" || fail "cached report fetch failed"
cmp -s "$work/report1.json" "$work/report2.json" \
    || fail "cached second serve is not byte-identical to the first"

$CURL "$base/v1/stats" >"$work/stats.json" || fail "stats fetch failed"
grep -q '"simulations": 1' "$work/stats.json" \
    || fail "cache hit ran a simulation: $(cat "$work/stats.json")"

echo "serve-smoke: scraping /metrics"
$CURL "$base/metrics" >"$work/metrics.txt" || fail "metrics scrape failed"
# Validity pass over the exposition: every non-comment line must be
# `name{labels} value` with a parseable value, and a real daemon
# exposes a real inventory, not a stub page.
awk '
    /^$/ { next }
    /^#/ { next }
    {
        if ($0 !~ /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? -?([0-9][0-9.eE+-]*|\.[0-9][0-9.eE+-]*|[+-]?Inf|NaN)$/) {
            print "serve-smoke: malformed exposition line: " $0; exit 1
        }
        n++
    }
    END { if (n < 20) { print "serve-smoke: only " n " series exposed"; exit 1 } }
' "$work/metrics.txt" || fail "metrics exposition invalid"
awk '$1 ~ /^coltd_jobs_completed_total\{state="done"\}$/ { sum += $2 }
     END { exit !(sum >= 1) }' "$work/metrics.txt" \
    || fail "coltd_jobs_completed_total{state=\"done\"} is zero after a completed job"

echo "serve-smoke: draining via SIGTERM"
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" -eq 0 ] || fail "daemon exited with status $rc on SIGTERM"
grep -q "drained cleanly" "$work/coltd.log" || fail "daemon log missing clean-drain line"
[ -f "$work/cache/index.json" ] || fail "drain did not flush the cache index"

echo "serve-smoke: OK (byte-identical cached serve, clean drain)"
