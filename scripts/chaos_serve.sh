#!/bin/sh
# Serving-path chaos test (make chaos-serve), in two phases.
#
# Phase 1 — crash and replay: boot coltd with a disk cache, land one
# job's report, then SIGKILL the daemon mid-load with one job running
# and several queued. Restart on the same cache dir and assert the
# journal replays exactly the accepted-but-unresolved jobs (counted
# straight out of journal.wal), every accepted job's result becomes
# servable (zero lost jobs), the pre-crash report is returned
# byte-identically, and a corrupted index.json is rebuilt from the
# entry sidecars on the next boot.
#
# Phase 2 — fault storm: boot coltd with every fsync failing
# (-disk-faults fsync-fail=1). The daemon must degrade, not die:
# jobs still complete and serve from the memory overlay, /v1/stats
# reports degraded:true, and SIGTERM still exits 0.
set -eu

GO=${GO:-go}
CURL="curl -sS --fail-with-body --max-time 30"
command -v curl >/dev/null || { echo "chaos-serve: curl not found"; exit 1; }

work=$(mktemp -d)
daemon_pid=""
cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -9 "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
    echo "chaos-serve: FAIL: $1" >&2
    echo "---- daemon log ----" >&2
    cat "$work/coltd.log" >&2 || true
    exit 1
}

# start_daemon <log-suffix> [extra flags...]: boot coltd on an
# ephemeral port with the shared cache dir and wait for the startup
# line. Sets $daemon_pid and $base.
start_daemon() {
    suffix=$1; shift
    : >"$work/coltd.log"
    "$work/coltd" -addr 127.0.0.1:0 -cache-dir "$cache" "$@" >"$work/coltd.log" 2>&1 &
    daemon_pid=$!
    base=""
    for _ in $(seq 1 100); do
        base=$(sed -n 's|^coltd: listening on \(http://.*\)$|\1|p' "$work/coltd.log")
        [ -n "$base" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || fail "daemon exited during startup ($suffix)"
        sleep 0.1
    done
    [ -n "$base" ] || fail "daemon never reported its listen address ($suffix)"
    cp "$work/coltd.log" "$work/coltd.$suffix.log" 2>/dev/null || true
}

# submit <spec-json> <out-file>: POST a job and extract its id into $id.
submit() {
    $CURL -X POST -d "$1" "$base/v1/jobs" >"$2" || fail "submission refused: $1"
    id=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$2" | head -n 1)
    [ -n "$id" ] || fail "no job id in $(cat "$2")"
}

# wait_state <id> <want> <tries>: poll a job until it reaches a state.
wait_state() {
    state=""
    for _ in $(seq 1 "$3"); do
        $CURL "$base/v1/jobs/$1" >"$work/status.json" || fail "status fetch failed for $1"
        state=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$work/status.json" | head -n 1)
        [ "$state" = "$2" ] && return 0
        case "$state" in failed|canceled) fail "job $1 reached state $state" ;; esac
        sleep 0.2
    done
    fail "job $1 never reached $2 (last state: $state)"
}

echo "chaos-serve: building coltd"
$GO build -o "$work/coltd" ./cmd/coltd

# ---------------------------------------------------------------- phase 1
echo "chaos-serve: phase 1: crash mid-load, replay on restart"
cache="$work/cache"
start_daemon boot1 -workers 1

landed='{"experiment": "table1", "quick": true, "refs": 2000, "seed": 100}'
submit "$landed" "$work/landed.json"
landed_id=$id
wait_state "$landed_id" done 150
$CURL "$base/v1/jobs/$landed_id/report" >"$work/report_precrash.json" \
    || fail "pre-crash report fetch failed"
[ -s "$work/report_precrash.json" ] || fail "empty pre-crash report"

# One slow job occupies the single worker; four quick ones queue
# behind it. SIGKILL lands while the slow one runs, so five accepted
# jobs die unresolved.
slow='{"experiment": "table1", "quick": true, "refs": 2000000, "seed": 1}'
submit "$slow" "$work/slow.json"
slow_id=$id
for k in 2 3 4 5; do
    submit "{\"experiment\": \"table1\", \"quick\": true, \"refs\": 2000, \"seed\": $k}" "$work/tail$k.json"
done
wait_state "$slow_id" running 100

echo "chaos-serve: SIGKILL with one job running, four queued"
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

[ -f "$cache/journal.wal" ] || fail "no journal survived the crash"
accepts=$(grep -c '"op":"accept"' "$cache/journal.wal") || true
commits=$(grep -c '"op":"commit"' "$cache/journal.wal") || true
expect=$((accepts - commits))
echo "chaos-serve: journal holds $accepts accepts, $commits commits ($expect unresolved)"
[ "$expect" -eq 5 ] || fail "expected 5 unresolved accepts in the journal, found $expect"

start_daemon boot2 -workers 1
replayed=$(sed -n 's/.*journal: replayed \([0-9]*\) accepted jobs.*/\1/p' "$work/coltd.log" | head -n 1)
[ "$replayed" = "$expect" ] || fail "replay log says '$replayed' jobs, journal says $expect"

# Every replayed job resolves: the journal's live set drains to zero.
live=""
for _ in $(seq 1 300); do
    $CURL "$base/v1/stats" >"$work/stats.json" || fail "stats fetch failed"
    live=$(sed -n 's/.*"live": \([0-9]*\).*/\1/p' "$work/stats.json" | head -n 1)
    [ "$live" = "0" ] && break
    sleep 0.2
done
[ "$live" = "0" ] || fail "journal live set never drained after replay (live=$live)"

# Zero lost accepted jobs: every pre-crash submission now serves
# straight from the cache, and the pre-crash report is byte-identical.
for k in 100 1 2 3 4 5; do
    refs=2000
    [ "$k" = "1" ] && refs=2000000
    submit "{\"experiment\": \"table1\", \"quick\": true, \"refs\": $refs, \"seed\": $k}" "$work/recheck.json"
    grep -q '"cached": true' "$work/recheck.json" \
        || fail "seed $k was accepted before the crash but is not cached after replay"
    [ "$k" = "100" ] && recheck_id=$id
done
$CURL "$base/v1/jobs/$recheck_id/report" >"$work/report_postcrash.json" \
    || fail "post-crash report fetch failed"
cmp -s "$work/report_precrash.json" "$work/report_postcrash.json" \
    || fail "recovered report differs from the pre-crash bytes"

echo "chaos-serve: draining recovered daemon"
kill -TERM "$daemon_pid"
rc=0; wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" -eq 0 ] || fail "recovered daemon exited with status $rc on SIGTERM"
grep -q "drained cleanly" "$work/coltd.log" || fail "recovered daemon missing clean-drain line"
if grep -q '"op":"accept"' "$cache/journal.wal" 2>/dev/null; then
    fail "journal still holds accept records after a clean drain"
fi

# A corrupted index is rebuilt from the entry sidecars on boot.
echo "chaos-serve: corrupting index.json and rebooting"
printf '{"torn' >"$cache/index.json"
start_daemon boot3 -workers 1
submit "$landed" "$work/rebuilt.json"
grep -q '"cached": true' "$work/rebuilt.json" \
    || fail "cache entry lost after index rebuild: $(cat "$work/rebuilt.json")"
kill -TERM "$daemon_pid"
rc=0; wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" -eq 0 ] || fail "daemon exited with status $rc after index rebuild"

# ---------------------------------------------------------------- phase 2
echo "chaos-serve: phase 2: fault storm must degrade, not kill"
cache="$work/cache2"
start_daemon storm -workers 1 -disk-faults fsync-fail=1 -disk-fault-seed 5 -breaker 1 -probe-interval 3600s

submit '{"experiment": "table1", "quick": true, "refs": 2000, "seed": 1}' "$work/storm1.json"
wait_state "$id" done 150
$CURL "$base/v1/jobs/$id/report" >"$work/storm_report.json" || fail "degraded report fetch failed"
[ -s "$work/storm_report.json" ] || fail "empty report under fault storm"

$CURL "$base/v1/stats" >"$work/storm_stats.json" || fail "stats fetch failed under faults"
grep -q '"degraded": true' "$work/storm_stats.json" \
    || fail "fault storm did not trip the breaker: $(cat "$work/storm_stats.json")"

# Still serving after the breaker opened: a second distinct job lands.
submit '{"experiment": "table1", "quick": true, "refs": 2000, "seed": 2}' "$work/storm2.json"
wait_state "$id" done 150

kill -TERM "$daemon_pid"
rc=0; wait "$daemon_pid" || rc=$?
daemon_pid=""
[ "$rc" -eq 0 ] || fail "degraded daemon exited with status $rc on SIGTERM (degrade-don't-die)"
grep -q "drained cleanly" "$work/coltd.log" || fail "degraded daemon missing clean-drain line"

echo "chaos-serve: OK (replayed $replayed accepted jobs, byte-identical recovery, degraded serve survived)"
