#!/bin/sh
# Cluster smoke test (make cluster-smoke): boot a 3-node coltd fleet
# with static -peers wiring, check every node's readyz reports the
# full ring, submit one spec through two different nodes and assert
# exactly one of the fleet's daemons simulated it (consistent-hash
# ownership proxies the rest), read the report through every node and
# assert byte-identical bytes (peer cache fill), then SIGKILL one node
# and assert the survivors shrink the ring and keep serving every
# previously served hash from cache with zero new simulations.
set -eu

GO=${GO:-go}
CURL="curl -sS --fail-with-body --max-time 30"
command -v curl >/dev/null || { echo "cluster-smoke: curl not found"; exit 1; }

work=$(mktemp -d)
pid1=""; pid2=""; pid3=""
cleanup() {
    for p in "$pid1" "$pid2" "$pid3"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -9 "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
    echo "cluster-smoke: FAIL: $1" >&2
    for n in n1 n2 n3; do
        echo "---- $n log ----" >&2
        cat "$work/$n.log" >&2 2>/dev/null || true
    done
    exit 1
}

echo "cluster-smoke: building coltd"
$GO build -o "$work/coltd" ./cmd/coltd

# Static -peers wiring needs every URL before any node boots, so the
# ports are picked up front (bind :0 three times, release, reuse).
# The window between release and reuse is the standard smoke-test
# race; loopback + an idle CI box make it vanishingly rare.
cat > "$work/freeports.go" <<'EOF'
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
)

func main() {
	n, _ := strconv.Atoi(os.Args[1])
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns[i] = ln
	}
	for _, ln := range lns {
		fmt.Println(ln.Addr().(*net.TCPAddr).Port)
		ln.Close()
	}
}
EOF
set -- $($GO run "$work/freeports.go" 3)
p1=$1; p2=$2; p3=$3
u1="http://127.0.0.1:$p1"; u2="http://127.0.0.1:$p2"; u3="http://127.0.0.1:$p3"
echo "cluster-smoke: ports $p1 $p2 $p3"

boot() { # boot <id> <port> <peers>
    "$work/coltd" -node-id "$1" -addr "127.0.0.1:$2" -peers "$3" \
        -cache-dir "$work/cache-$1" -steal-threshold 2 \
        -heartbeat-interval 100ms -log-level warn >"$work/$1.log" 2>&1 &
}
boot n1 "$p1" "n2=$u2,n3=$u3"; pid1=$!
boot n2 "$p2" "n1=$u1,n3=$u3"; pid2=$!
boot n3 "$p3" "n1=$u1,n2=$u2"; pid3=$!

for n in n1 n2 n3; do
    ok=""
    for _ in $(seq 1 100); do
        if grep -q "listening on http" "$work/$n.log" 2>/dev/null; then ok=1; break; fi
        sleep 0.1
    done
    [ -n "$ok" ] || fail "$n never reported its listen address"
done
echo "cluster-smoke: fleet up ($u1 $u2 $u3)"

# Every node's readyz must report the full ring with both peers alive.
for u in "$u1" "$u2" "$u3"; do
    ring=""
    for _ in $(seq 1 50); do
        $CURL "$u/v1/readyz" >"$work/readyz.json" || fail "readyz fetch failed on $u"
        if grep -q '"ring_size": 3' "$work/readyz.json" \
            && grep -q '"peers_alive": 2' "$work/readyz.json"; then ring=1; break; fi
        sleep 0.1
    done
    [ -n "$ring" ] || fail "$u readyz never showed ring_size 3 / 2 alive: $(cat "$work/readyz.json")"
done
echo "cluster-smoke: ring converged on all nodes"

spec='{"experiment": "table1", "quick": true, "refs": 2000}'

# Submit through two different nodes. Whichever of them does not own
# the spec's hash proxies to the owner — so across the two
# submissions at least one is a proxy, and the fleet still runs the
# simulation exactly once.
$CURL -D "$work/h1" -X POST -d "$spec" "$u1/v1/jobs" >"$work/s1.json" || fail "submit via n1 refused"
$CURL -D "$work/h2" -X POST -d "$spec" "$u2/v1/jobs" >"$work/s2.json" || fail "submit via n2 refused"
id1=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$work/s1.json" | head -n 1)
[ -n "$id1" ] || fail "no job id in $(cat "$work/s1.json")"

state=""
for _ in $(seq 1 300); do
    $CURL "$u1/v1/jobs/$id1" >"$work/status.json" || fail "status fetch failed"
    state=$(sed -n 's/.*"state": "\([^"]*\)".*/\1/p' "$work/status.json" | head -n 1)
    case "$state" in
        done) break ;;
        failed|canceled) fail "job reached state $state: $(cat "$work/status.json")" ;;
    esac
    sleep 0.2
done
[ "$state" = "done" ] || fail "job never completed (last state: $state)"

# The report must be byte-identical through every node: the owner
# serves its cache, the others peer-fill (hash-verified) on the way
# through.
$CURL "$u1/v1/jobs/$id1/report" >"$work/report1.json" || fail "report via n1 failed"
[ -s "$work/report1.json" ] || fail "empty report"
for u in "$u2" "$u3"; do
    $CURL "$u/v1/jobs/$id1/report" >"$work/reportX.json" || fail "report via $u failed"
    cmp -s "$work/report1.json" "$work/reportX.json" || fail "report via $u not byte-identical"
done

# One simulation across the fleet, and at least one ownership proxy.
sims=$(for u in "$u1" "$u2" "$u3"; do
    $CURL "$u/v1/stats" | sed -n 's/.*"simulations": \([0-9]*\).*/\1/p' | head -n 1
done | awk '{ s += $1 } END { print s }')
[ "$sims" = "1" ] || fail "fleet ran $sims simulations for one spec, want 1"
proxied=$(for u in "$u1" "$u2" "$u3"; do
    $CURL "$u/metrics" | awk '$1 == "coltd_cluster_proxied_submits_total" { print $2 }'
done | awk '{ s += $1 } END { print s }')
[ "$proxied" -ge 1 ] || fail "no submission was proxied to its ring owner"
fills=$(for u in "$u1" "$u2" "$u3"; do
    $CURL "$u/metrics" | awk '$1 == "coltd_cluster_peer_fill_total{outcome=\"ok\"}" { print $2 }'
done | awk '{ s += $1 } END { print s }')
[ "$fills" -ge 1 ] || fail "no peer cache fill happened despite cross-node report reads"
echo "cluster-smoke: 1 simulation, $proxied proxied submit(s), $fills peer fill(s)"

# Kill n3 the hard way. The survivors must notice (ring shrinks to 2)
# and keep serving the previously served hash from cache — zero new
# simulations.
echo "cluster-smoke: SIGKILL n3"
kill -9 "$pid3" 2>/dev/null || true
wait "$pid3" 2>/dev/null || true
pid3=""
for u in "$u1" "$u2"; do
    shrunk=""
    for _ in $(seq 1 100); do
        $CURL "$u/v1/readyz" >"$work/readyz.json" || fail "readyz fetch failed on $u after kill"
        if grep -q '"ring_size": 2' "$work/readyz.json"; then shrunk=1; break; fi
        sleep 0.1
    done
    [ -n "$shrunk" ] || fail "$u never shrank its ring after the kill: $(cat "$work/readyz.json")"
done

for u in "$u1" "$u2"; do
    $CURL -X POST -d "$spec" "$u/v1/jobs" >"$work/sk.json" || fail "post-kill submit via $u refused"
    grep -q '"cached": true' "$work/sk.json" || fail "post-kill submit via $u not served from cache: $(cat "$work/sk.json")"
    idk=$(sed -n 's/.*"id": "\([^"]*\)".*/\1/p' "$work/sk.json" | head -n 1)
    $CURL "$u/v1/jobs/$idk/report" >"$work/reportK.json" || fail "post-kill report via $u failed"
    cmp -s "$work/report1.json" "$work/reportK.json" || fail "post-kill report via $u not byte-identical"
done
sims=$(for u in "$u1" "$u2"; do
    $CURL "$u/v1/stats" | sed -n 's/.*"simulations": \([0-9]*\).*/\1/p' | head -n 1
done | awk '{ s += $1 } END { print s }')
[ "$sims" -le 1 ] || fail "survivors re-simulated after the kill ($sims simulations)"

echo "cluster-smoke: OK (ring converged, 1 fleet-wide simulation, byte-identical serves, kill survived)"
