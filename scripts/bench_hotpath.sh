#!/bin/sh
# Hot-path trajectory recorder (make bench-hotpath): run the
# BenchmarkHotPath refs/sec benchmark and write BENCH_hotpath.json at
# the repo root, so every PR records where the per-reference engine
# stands. The scalar loop (BenchmarkHotPathScalar) runs alongside as
# the in-tree reference point; the PR-gating speedup in the committed
# file is measured against the pre-PR scalar loop at the parent commit
# (see EXPERIMENTS.md for the schema and methodology).
#
# Usage: scripts/bench_hotpath.sh [benchtime]
#   benchtime   go test -benchtime value (default 3s)
#   PREPR_NS    optional env: ns/ref of the pre-PR hot loop, measured
#               by running this PR's fixture loop in a worktree of the
#               parent commit (interleave the two binaries and take
#               medians — see EXPERIMENTS.md). When set, the JSON also
#               records the cross-PR speedup.
set -eu

GO=${GO:-go}
BENCHTIME=${1:-3s}
cd "$(dirname "$0")/.."

out=$(mktemp)
trap 'rm -f "$out"' EXIT INT TERM

echo "bench-hotpath: running BenchmarkHotPath + BenchmarkHotPathScalar (-benchtime $BENCHTIME)"
$GO test -run '^$' -bench 'BenchmarkHotPath(Scalar)?$' -benchtime "$BENCHTIME" -benchmem . | tee "$out"

# The recorded batch size is the engine's DefaultBatchSize (the
# benchmark runs with BatchSize 0, which selects it).
batch=$(sed -n 's/^const DefaultBatchSize = \([0-9][0-9]*\)$/\1/p' internal/experiments/runner.go)

awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v batch="${batch:-256}" -v prepr="${PREPR_NS:-}" '
/^BenchmarkHotPathScalar/ { scalar_ns = $3; next }
/^BenchmarkHotPath/       { ns = $3; allocs = $7 }
END {
    if (ns == "") { print "bench-hotpath: no BenchmarkHotPath result" > "/dev/stderr"; exit 1 }
    printf "{\n"
    printf "  \"refs_per_sec\": %.0f,\n", 1e9 / ns
    printf "  \"ns_per_ref\": %.1f,\n", ns
    printf "  \"allocs_per_ref\": %s,\n", allocs
    printf "  \"batch_size\": %d,\n", batch
    if (scalar_ns != "") {
        printf "  \"scalar_ns_per_ref\": %.1f,\n", scalar_ns
        printf "  \"speedup_vs_scalar\": %.2f,\n", scalar_ns / ns
    }
    if (prepr != "") {
        printf "  \"prepr_ns_per_ref\": %.1f,\n", prepr
        printf "  \"speedup_vs_prepr\": %.2f,\n", prepr / ns
    }
    printf "  \"commit\": \"%s\"\n", commit
    printf "}\n"
}' "$out" > BENCH_hotpath.json

echo "bench-hotpath: wrote BENCH_hotpath.json:"
cat BENCH_hotpath.json
