#!/bin/sh
# Serving-path trajectory recorder (make bench-serve): run coltload
# against a self-hosted server and write BENCH_serve.json at the repo
# root, so every PR records where the serving stack stands. The
# workload is the official one from EXPERIMENTS.md: a closed loop of
# zipf-skewed submissions over a prewarmed spec universe, with a
# monitoring client polling /v1/stats — the traffic shape that
# punishes a stats path which holds admission locks while it
# aggregates.
#
# Usage: scripts/bench_serve.sh [duration]
#   duration           measured window (default 8s; CI smoke uses 2s)
#   PREPR_P99_MS       optional env: p99 ms from the pre-PR build,
#                      measured by running the parent commit's
#                      coltload on the same seed (interleave the two
#                      binaries and take medians — see EXPERIMENTS.md).
#   PREPR_GOODPUT_RPS  optional env: goodput from the pre-PR build.
# When the PREPR_* vars are set, the JSON also records the cross-PR
# speedups.
set -eu

GO=${GO:-go}
DURATION=${1:-8s}
cd "$(dirname "$0")/.."

echo "bench-serve: building coltload"
bin=$(mktemp)
trap 'rm -f "$bin"' EXIT INT TERM
$GO build -o "$bin" ./cmd/coltload

echo "bench-serve: closed loop, 16 clients, 64 specs, zipf_s=1.1, $DURATION window"
"$bin" \
    -clients 16 -specs 64 -zipf-s 1.1 -seed 1 \
    -duration "$DURATION" -refs 2000 -workers 2 -queue 64 \
    -stats-poll 5ms \
    -commit "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    ${PREPR_P99_MS:+-prepr-p99-ms "$PREPR_P99_MS"} \
    ${PREPR_GOODPUT_RPS:+-prepr-goodput-rps "$PREPR_GOODPUT_RPS"} \
    -out BENCH_serve.json
