#!/bin/sh
# Serving-path trajectory recorder (make bench-serve): run coltload
# against a self-hosted server and write BENCH_serve.json at the repo
# root, so every PR records where the serving stack stands. The
# workload is the official one from EXPERIMENTS.md: a closed loop of
# zipf-skewed submissions over a prewarmed spec universe, with a
# monitoring client polling /v1/stats — the traffic shape that
# punishes a stats path which holds admission locks while it
# aggregates.
#
# After the single-node run, a second phase boots a 3-node coltd
# fleet (static -peers, work stealing on) and drives it with
# coltload's -addrs round-robin; that summary — with its per-node
# goodput/p99 and proxy/peer-fill/steal counters — lands under the
# "cluster" key of BENCH_serve.json, so the single-node trajectory
# fields stay comparable across PRs.
#
# Usage: scripts/bench_serve.sh [duration]
#   duration           measured window (default 8s; CI smoke uses 2s)
#   PREPR_P99_MS       optional env: p99 ms from the pre-PR build,
#                      measured by running the parent commit's
#                      coltload on the same seed (interleave the two
#                      binaries and take medians — see EXPERIMENTS.md).
#   PREPR_GOODPUT_RPS  optional env: goodput from the pre-PR build.
# When the PREPR_* vars are set, the JSON also records the cross-PR
# speedups.
set -eu

GO=${GO:-go}
DURATION=${1:-8s}
cd "$(dirname "$0")/.."

work=$(mktemp -d)
pid1=""; pid2=""; pid3=""
cleanup() {
    for p in "$pid1" "$pid2" "$pid3"; do
        if [ -n "$p" ] && kill -0 "$p" 2>/dev/null; then
            kill -9 "$p" 2>/dev/null || true
        fi
    done
    rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "bench-serve: building coltload and coltd"
$GO build -o "$work/coltload" ./cmd/coltload
$GO build -o "$work/coltd" ./cmd/coltd
commit=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)

echo "bench-serve: closed loop, 16 clients, 64 specs, zipf_s=1.1, $DURATION window"
"$work/coltload" \
    -clients 16 -specs 64 -zipf-s 1.1 -seed 1 \
    -duration "$DURATION" -refs 2000 -workers 2 -queue 64 \
    -stats-poll 5ms \
    -commit "$commit" \
    ${PREPR_P99_MS:+-prepr-p99-ms "$PREPR_P99_MS"} \
    ${PREPR_GOODPUT_RPS:+-prepr-goodput-rps "$PREPR_GOODPUT_RPS"} \
    -out "$work/single.json"

# ---- 3-node fleet phase -------------------------------------------
# Ports are picked before boot because -peers wiring is static.
cat > "$work/freeports.go" <<'EOF'
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
)

func main() {
	n, _ := strconv.Atoi(os.Args[1])
	lns := make([]net.Listener, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		lns[i] = ln
	}
	for _, ln := range lns {
		fmt.Println(ln.Addr().(*net.TCPAddr).Port)
		ln.Close()
	}
}
EOF
set -- $($GO run "$work/freeports.go" 3)
u1="http://127.0.0.1:$1"; u2="http://127.0.0.1:$2"; u3="http://127.0.0.1:$3"

boot() { # boot <id> <port> <peers>
    "$work/coltd" -node-id "$1" -addr "127.0.0.1:$2" -peers "$3" \
        -cache-dir "$work/cache-$1" -workers 2 -queue 64 \
        -steal-threshold 4 -heartbeat-interval 100ms \
        -log-level warn >"$work/$1.log" 2>&1 &
}
boot n1 "$1" "n2=$u2,n3=$u3"; pid1=$!
boot n2 "$2" "n1=$u1,n3=$u3"; pid2=$!
boot n3 "$3" "n1=$u1,n2=$u2"; pid3=$!
for n in n1 n2 n3; do
    for _ in $(seq 1 100); do
        grep -q "listening on http" "$work/$n.log" 2>/dev/null && break
        sleep 0.1
    done
done

echo "bench-serve: 3-node fleet phase ($u1 $u2 $u3)"
"$work/coltload" \
    -addrs "$u1,$u2,$u3" \
    -clients 16 -specs 64 -zipf-s 1.1 -seed 1 \
    -duration "$DURATION" -refs 2000 \
    -stats-poll 5ms \
    -commit "$commit" \
    -out "$work/cluster.json"

# Fold the fleet summary under the single-node record's "cluster"
# key: the top-level fields keep their cross-PR meaning, the fleet
# numbers (and per-node breakdown) ride along.
cat > "$work/merge.go" <<'EOF'
package main

import (
	"encoding/json"
	"os"
)

func main() {
	read := func(p string) map[string]any {
		b, err := os.ReadFile(p)
		if err != nil {
			panic(err)
		}
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			panic(err)
		}
		return m
	}
	single, cluster := read(os.Args[1]), read(os.Args[2])
	single["cluster"] = cluster
	out, err := json.MarshalIndent(single, "", "  ")
	if err != nil {
		panic(err)
	}
	if err := os.WriteFile(os.Args[3], append(out, '\n'), 0o644); err != nil {
		panic(err)
	}
}
EOF
$GO run "$work/merge.go" "$work/single.json" "$work/cluster.json" BENCH_serve.json
echo "bench-serve: wrote BENCH_serve.json (single-node + cluster phases)"
